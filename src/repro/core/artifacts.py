"""Typed per-stage artifact stores for the staged pipeline.

:mod:`repro.core.cache` stores the *end product* of a cell — a
serialized :class:`~repro.machine.profiler.ExecutionProfile`, keyed by
(benchmark, workload, machine, version).  The staged pipeline also
needs to persist the *intermediate* artifact between capture and
replay: the machine-independent :class:`~repro.machine.capture.
TelemetryCapture`, keyed by :func:`~repro.core.cache.capture_key`
(no machine).  This module adds:

* a compact binary codec for captures (:func:`encode_capture` /
  :func:`decode_capture`) — JSON header for the per-method counters
  and decimation state, zlib-compressed raw int64 column bytes with a
  CRC for the event stream.  JSON would baloon the four event columns
  (hundreds of thousands of int64s) roughly 5x and round-trip slowly;
  raw little-endian column bytes restore with one ``frombuffer`` each;
* :class:`CaptureStore` — the on-disk store for encoded captures,
  with the same atomic-write and quarantine-on-corruption discipline
  as :class:`~repro.core.cache.ResultCache`;
* :class:`ArtifactStore` — the pair of per-stage stores the engine
  holds: ``profiles`` (the replay-stage artifact, one entry per
  machine/build) and ``captures`` (the capture-stage artifact, one
  entry per workload, shared by every machine/build that replays it).

Capture traffic is mirrored under ``engine.artifacts.capture.*``
(never ``engine.cache.*``, which remains exclusively profile-store
traffic).
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import asdict
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from . import metrics
from ..machine import telemetry
from ..machine.capture import TelemetryCapture
from ..machine.telemetry import MethodCounters
from .cache import CACHE_FORMAT, CacheStats, ResultCache
from .errors import CacheCorruption

__all__ = [
    "CAPTURE_MAGIC",
    "encode_capture",
    "decode_capture",
    "CaptureStore",
    "ArtifactStore",
]

#: Leading bytes of every encoded capture; rev with the layout.
CAPTURE_MAGIC = b"RTC1"

_LEN_HEADER = struct.Struct("<II")  # header length, compressed payload length


def encode_capture(capture: TelemetryCapture) -> bytes:
    """Serialize a capture to the compact binary artifact format.

    Layout: ``CAPTURE_MAGIC``, two little-endian u32 lengths (JSON
    header, compressed payload), a u32 CRC-32 of the *uncompressed*
    column bytes, the JSON header, then the zlib-compressed
    concatenation of the four int64 event columns.  Everything the
    decoder needs to reject a damaged entry is self-contained.
    """
    cols = [np.ascontiguousarray(c, dtype=np.int64) for c in capture.columns]
    raw = b"".join(c.tobytes() for c in cols)
    header = json.dumps(
        {
            "format": CACHE_FORMAT,
            "benchmark": capture.benchmark,
            "workload": capture.workload,
            "verified": capture.verified,
            "sampling_stride": capture.sampling_stride,
            "event_cap": capture.event_cap,
            "tick": capture.tick,
            "events": int(len(cols[0])),
            "methods": [asdict(mc) for mc in capture.methods],
        },
        separators=(",", ":"),
    ).encode()
    payload = zlib.compress(raw, 6)
    return (
        CAPTURE_MAGIC
        + _LEN_HEADER.pack(len(header), len(payload))
        + struct.pack("<I", zlib.crc32(raw))
        + header
        + payload
    )


def decode_capture(blob: bytes) -> TelemetryCapture:
    """Reconstruct a capture; raises :class:`CacheCorruption` on damage.

    Every structural check — magic, declared lengths, format version,
    CRC over the decompressed columns, column count consistency — maps
    to the same exception so stores can quarantine uniformly.
    """
    if blob[: len(CAPTURE_MAGIC)] != CAPTURE_MAGIC:
        raise CacheCorruption("capture artifact: bad magic")
    offset = len(CAPTURE_MAGIC)
    try:
        header_len, payload_len = _LEN_HEADER.unpack_from(blob, offset)
        offset += _LEN_HEADER.size
        (crc,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        header = json.loads(blob[offset : offset + header_len])
        payload = blob[offset + header_len : offset + header_len + payload_len]
        if len(payload) != payload_len:
            raise CacheCorruption("capture artifact: truncated payload")
        raw = zlib.decompress(payload)
    except CacheCorruption:
        raise
    except (struct.error, ValueError, zlib.error) as exc:
        raise CacheCorruption(f"capture artifact: undecodable ({exc})") from exc
    if header.get("format") != CACHE_FORMAT:
        raise CacheCorruption(
            f"capture artifact: unsupported format {header.get('format')!r}"
        )
    if zlib.crc32(raw) != crc:
        raise CacheCorruption("capture artifact: CRC mismatch")
    n = header["events"]
    if len(raw) != 4 * 8 * n:
        raise CacheCorruption(
            f"capture artifact: expected {4 * 8 * n} column bytes, got {len(raw)}"
        )
    width = 8 * n
    columns = tuple(
        np.frombuffer(raw[i * width : (i + 1) * width], dtype=np.int64).copy()
        for i in range(4)
    )
    try:
        methods = tuple(MethodCounters(**mc) for mc in header["methods"])
        return TelemetryCapture(
            benchmark=header["benchmark"],
            workload=header["workload"],
            methods=methods,
            columns=columns,  # type: ignore[arg-type]
            sampling_stride=header["sampling_stride"],
            event_cap=header["event_cap"],
            tick=header["tick"],
            verified=header["verified"],
        )
    except (KeyError, TypeError) as exc:
        raise CacheCorruption(f"capture artifact: bad header ({exc})") from exc


class CaptureStore:
    """Content-addressed on-disk store of encoded telemetry captures.

    Mirrors :class:`~repro.core.cache.ResultCache` semantics — atomic
    replace on write, quarantine (rename to ``*.bin.corrupt``) plus
    miss on an undecodable read — for ``.bin`` entries at
    ``<root>/<key[:2]>/<key>.bin``.  Traffic is counted per instance
    in :attr:`stats` and process-wide under
    ``engine.artifacts.capture.*``.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.bin"

    def get(self, key: str) -> TelemetryCapture | None:
        """Look up a capture; a miss or corrupt entry returns None."""
        path = self._path(key)
        started = time.perf_counter()
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            telemetry.record("engine.artifacts.capture.misses")
            self._observe_lookup("miss", started)
            return None
        try:
            capture = decode_capture(raw)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.stats.misses += 1
            telemetry.record("engine.artifacts.capture.misses")
            self._observe_lookup("miss", started)
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(raw)
        telemetry.record("engine.artifacts.capture.hits")
        telemetry.record("engine.artifacts.capture.bytes_read", len(raw))
        self._observe_lookup("hit", started)
        metrics.inc(metrics.CACHE_IO_BYTES_TOTAL, len(raw), store="capture", direction="read")
        return capture

    def _observe_lookup(self, result: str, started: float) -> None:
        metrics.observe(
            metrics.CACHE_LOOKUP_SECONDS,
            time.perf_counter() - started,
            store="capture",
            result=result,
        )
        metrics.inc(metrics.CACHE_EVENTS_TOTAL, store="capture", event=result)

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:  # pragma: no cover - racing unlink/permissions
            pass
        self.stats.quarantined += 1
        telemetry.record("engine.artifacts.capture.quarantined")
        metrics.inc(metrics.CACHE_EVENTS_TOTAL, store="capture", event="quarantined")

    def put(self, key: str, capture: TelemetryCapture) -> None:
        """Store an encoded capture under ``key`` (atomic replace)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        raw = encode_capture(capture)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(raw)
        os.replace(tmp, path)
        self.stats.bytes_written += len(raw)
        telemetry.record("engine.artifacts.capture.bytes_written", len(raw))
        metrics.inc(metrics.CACHE_EVENTS_TOTAL, store="capture", event="write")
        metrics.inc(metrics.CACHE_IO_BYTES_TOTAL, len(raw), store="capture", direction="write")

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.bin"))

    def total_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.root.glob("*/*.bin"))

    def quarantined_entries(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.bin.corrupt"))

    def wipe(self) -> int:
        """Delete every entry; returns the number of live entries removed."""
        n = 0
        for path in self.root.glob("*/*.bin.corrupt"):
            path.unlink(missing_ok=True)
        for path in self.root.glob("*/*.bin"):
            path.unlink(missing_ok=True)
            n += 1
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return n


class ArtifactStore:
    """The engine's pair of per-stage stores under one cache root.

    ``profiles`` is the replay-stage store — one
    :class:`~repro.machine.profiler.ExecutionProfile` per (workload,
    machine, build) — and is the *same* :class:`ResultCache` object the
    caller handed the engine, so their ``cache.stats`` keep working.
    ``captures`` lives under ``<root>/capture/`` — one
    :class:`~repro.machine.capture.TelemetryCapture` per workload,
    shared across every machine/build.  The subdirectory is invisible
    to the profile store's ``*/*.json`` globs, so profile entry counts
    and :meth:`ResultCache.wipe` semantics are unchanged.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        profiles: ResultCache | None = None,
    ):
        if profiles is None:
            if root is None:
                raise ValueError("ArtifactStore: need a root or a ResultCache")
            profiles = ResultCache(root)
        self.profiles = profiles
        self.captures = CaptureStore(Path(profiles.root) / "capture")

    @property
    def root(self) -> Path:
        return self.profiles.root

    def wipe(self) -> int:
        """Wipe both stages; returns total live entries removed."""
        return self.profiles.wipe() + self.captures.wipe()
