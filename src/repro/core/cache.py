"""Content-addressed on-disk cache for characterization results.

Re-running Table II, the figures, or the studies repeats the exact same
(benchmark, workload) executions; since the whole pipeline is
deterministic (see DESIGN.md §6), every :class:`ExecutionProfile` is a
pure function of four inputs:

* the benchmark id,
* the workload content (name, seed, params, and a digest of the
  payload itself),
* the machine configuration,
* the repro version (the cost model may change between releases).

:func:`cache_key` hashes those four inputs into a stable SHA-256 key
and :class:`ResultCache` stores the profile (minus the benchmark
output, which the summaries never read) as JSON under
``<root>/<key[:2]>/<key>.json``.  JSON floats round-trip exactly
(``repr`` is shortest-round-trip), so a cached profile reconstructs the
summaries bit-identically.

Cache traffic (hits / misses / bytes) is mirrored into the process-wide
counters of :mod:`repro.machine.telemetry` under ``engine.cache.*`` so
operational tooling can observe it without holding the cache object.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections.abc import Mapping, Set
from dataclasses import asdict, fields, is_dataclass
from pathlib import Path
from typing import Any

from . import metrics
from ..machine import telemetry
from ..machine.cache import HierarchyStats
from ..machine.cost import MachineConfig, MachineReport, MethodCost
from ..machine.profiler import ExecutionProfile
from .coverage import CoverageProfile
from .errors import CacheCorruption
from .topdown import TopDownVector
from .workload import Workload

__all__ = [
    "CACHE_FORMAT",
    "payload_digest",
    "workload_fingerprint",
    "cache_key",
    "capture_key",
    "profile_to_dict",
    "profile_from_dict",
    "CacheStats",
    "ResultCache",
]

#: Bump when the serialized profile layout changes; part of every key.
CACHE_FORMAT = 1


# --------------------------------------------------------------- hashing


def _update(h: "hashlib._Hash", obj: Any) -> None:
    """Feed a canonical, type-tagged encoding of ``obj`` into ``h``.

    Equal values produce equal streams regardless of how they were
    built; mappings are visited in sorted key order and sets as sorted
    element digests, so insertion order never leaks into the hash.
    """
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, bool):
        h.update(b"T;" if obj else b"F;")
    elif isinstance(obj, int):
        h.update(b"i%d;" % obj)
    elif isinstance(obj, float):
        h.update(b"f" + repr(obj).encode() + b";")
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(b"s%d:" % len(raw))
        h.update(raw)
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        h.update(b"b%d:" % len(raw))
        h.update(raw)
    elif isinstance(obj, (list, tuple)):
        h.update(b"l")
        for item in obj:
            _update(h, item)
        h.update(b"e")
    elif isinstance(obj, Mapping):
        h.update(b"d")
        for key in sorted(obj, key=lambda k: (type(k).__name__, repr(k))):
            _update(h, key)
            _update(h, obj[key])
        h.update(b"e")
    elif isinstance(obj, (set, frozenset, Set)):
        h.update(b"S")
        for digest in sorted(payload_digest(item) for item in obj):
            h.update(digest.encode())
        h.update(b"e")
    elif is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"D" + type(obj).__name__.encode() + b":")
        for f in fields(obj):
            _update(h, f.name)
            _update(h, getattr(obj, f.name))
        h.update(b"e")
    elif type(obj).__module__ == "numpy" and hasattr(obj, "tobytes"):
        h.update(b"A" + str(obj.dtype).encode() + repr(obj.shape).encode() + b":")
        h.update(obj.tobytes())
    else:
        rep = repr(obj)
        if " at 0x" in rep:
            raise TypeError(
                f"payload_digest: {type(obj).__name__} has no value-based repr; "
                "add a dataclass wrapper or a stable __repr__"
            )
        h.update(b"r" + rep.encode() + b";")


def payload_digest(obj: Any) -> str:
    """SHA-256 hex digest of a canonical encoding of any payload value."""
    h = hashlib.sha256()
    _update(h, obj)
    return h.hexdigest()


def workload_fingerprint(workload: Workload) -> dict[str, Any]:
    """The workload identity that participates in the cache key."""
    return {
        "name": workload.name,
        "benchmark": workload.benchmark,
        "kind": workload.kind,
        "seed": workload.seed,
        "params": payload_digest(dict(workload.params)),
        "payload": payload_digest(workload.payload),
    }


def _descriptor_tokens(benchmark_id: str) -> dict[str, str]:
    """Registry descriptor tokens that join this benchmark's cache keys.

    Empty for descriptors at ``version=1`` (and for benchmark ids the
    registry has never heard of — keys must stay computable for
    synthetic test benchmarks), so pre-registry cache entries keep
    their exact keys.  A descriptor version bump makes its token
    non-``None``, which shows up here and invalidates exactly that
    scenario's artifacts.
    """
    from .registry import REGISTRY

    return REGISTRY.cache_tokens(benchmark_id)


def cache_key(
    benchmark_id: str,
    workload: Workload,
    machine: MachineConfig | None = None,
    *,
    build: str | None = None,
    sampling: str | None = None,
) -> str:
    """Stable key for one (benchmark, workload, machine, version) cell.

    ``build`` is an optional digest of a build transformation (e.g. an
    FDO profile — see :meth:`repro.fdo.optimizer.FdoBuild.digest`) that
    changes the replay but not the capture.  ``None`` (the baseline
    build) hashes exactly as before, so caches populated prior to this
    field stay warm.

    ``sampling`` is the optional :meth:`repro.machine.sampling.
    SamplingPlan.cache_token` of a phase-sampled replay.  ``None`` (and
    an ``exact=True`` plan, whose token *is* ``None``) hashes exactly
    as before, so sampled estimates and exact results can never share
    a key.

    Registry descriptor versions join the key the same way: only
    non-``None`` :meth:`~repro.core.registry.Descriptor.cache_token`
    values (version > 1) are folded in, so unchanged descriptors keep
    every pre-existing key byte-identical.
    """
    from .. import __version__

    ident: dict[str, Any] = {
        "format": CACHE_FORMAT,
        "version": __version__,
        "benchmark": benchmark_id,
        "workload": workload_fingerprint(workload),
        "machine": asdict(machine or MachineConfig()),
    }
    tokens = _descriptor_tokens(benchmark_id)
    if tokens:
        ident["descriptors"] = tokens
    if build is not None:
        ident["build"] = build
    if sampling is not None:
        ident["sampling"] = sampling
    h = hashlib.sha256()
    _update(h, ident)
    return h.hexdigest()


def capture_key(benchmark_id: str, workload: Workload) -> str:
    """Stable key for one captured telemetry stream.

    Deliberately *machine-independent*: the capture stage records what
    the benchmark did, not how a machine would execute it, so the key
    covers only the benchmark id, the workload content, the artifact
    format, and the repro version — plus, like :func:`cache_key`, any
    non-baseline registry descriptor tokens.  Every machine config (and
    every FDO build) replays the same capture.
    """
    from .. import __version__

    ident: dict[str, Any] = {
        "format": CACHE_FORMAT,
        "version": __version__,
        "stage": "capture",
        "benchmark": benchmark_id,
        "workload": workload_fingerprint(workload),
    }
    tokens = _descriptor_tokens(benchmark_id)
    if tokens:
        ident["descriptors"] = tokens
    h = hashlib.sha256()
    _update(h, ident)
    return h.hexdigest()


# --------------------------------------------------------- serialization


def profile_to_dict(profile: ExecutionProfile) -> dict[str, Any]:
    """Serialize a profile (minus its benchmark ``output``) to plain JSON.

    The output object is intentionally dropped: summaries only read the
    machine report, and outputs can be arbitrarily large.  A profile
    restored from the cache therefore has ``output=None``.

    A :class:`~repro.machine.sampling.SampledProfile` additionally
    carries a ``"sampling"`` section so cache hits round-trip the
    sampling provenance (plan, event ratio, error estimates).
    """
    report = profile.report
    td = report.topdown
    sampling = getattr(profile, "sampling", None)
    return {
        "format": CACHE_FORMAT,
        "benchmark": profile.benchmark,
        "workload": profile.workload,
        "verified": profile.verified,
        **({"sampling": sampling.to_dict()} if sampling is not None else {}),
        "report": {
            "topdown": [td.front_end, td.back_end, td.bad_speculation, td.retiring],
            "coverage": dict(report.coverage.fractions),
            "cycles": report.cycles,
            "seconds": report.seconds,
            "per_method": {name: asdict(mc) for name, mc in report.per_method.items()},
            "cache_stats": asdict(report.cache_stats),
            "branch_misprediction_rate": report.branch_misprediction_rate,
            "sampling_stride": report.sampling_stride,
            "counters": dict(report.counters),
        },
    }


def profile_from_dict(data: Mapping[str, Any]) -> ExecutionProfile:
    """Reconstruct an :class:`ExecutionProfile` from :func:`profile_to_dict`.

    Raises :class:`~repro.core.errors.CacheCorruption` (a ``ValueError``
    subclass, for compatibility) on an unrecognized layout.
    """
    if data.get("format") != CACHE_FORMAT:
        raise CacheCorruption(f"unsupported cache entry format {data.get('format')!r}")
    rep = data["report"]
    f, b, s, r = rep["topdown"]
    report = MachineReport(
        topdown=TopDownVector(front_end=f, back_end=b, bad_speculation=s, retiring=r),
        coverage=CoverageProfile(dict(rep["coverage"])),
        cycles=rep["cycles"],
        seconds=rep["seconds"],
        per_method={name: MethodCost(**mc) for name, mc in rep["per_method"].items()},
        cache_stats=HierarchyStats(**rep["cache_stats"]),
        branch_misprediction_rate=rep["branch_misprediction_rate"],
        sampling_stride=rep["sampling_stride"],
        counters=dict(rep["counters"]),
    )
    if "sampling" in data:
        from ..machine.sampling import SampledProfile, SamplingInfo

        try:
            info = SamplingInfo.from_dict(data["sampling"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CacheCorruption(f"bad sampling section ({exc})") from exc
        return SampledProfile(
            benchmark=data["benchmark"],
            workload=data["workload"],
            report=report,
            output=None,
            verified=data["verified"],
            sampling=info,
        )
    return ExecutionProfile(
        benchmark=data["benchmark"],
        workload=data["workload"],
        report=report,
        output=None,
        verified=data["verified"],
    )


# ----------------------------------------------------------------- cache


class CacheStats:
    """Traffic counters for one :class:`ResultCache` instance."""

    __slots__ = ("hits", "misses", "bytes_read", "bytes_written", "quarantined")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.quarantined = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "quarantined": self.quarantined,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"read={self.bytes_read}B, written={self.bytes_written}B, "
            f"quarantined={self.quarantined})"
        )


class ResultCache:
    """Content-addressed on-disk store of serialized execution profiles.

    Entries live at ``<root>/<key[:2]>/<key>.json`` and are written
    atomically (temp file + ``os.replace``), so concurrent writers of
    the *same* key are safe — last writer wins with identical content.
    A corrupt or truncated entry is quarantined (renamed to
    ``*.json.corrupt``), reads as a miss, and is re-created by the next
    :meth:`put`.

    Invalidation is purely key-based: any change to the workload
    content, machine config, serialization format, or repro version
    produces a different key, and stale entries are simply never read
    again.  :meth:`wipe` removes everything under the root.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> ExecutionProfile | None:
        """Look up a profile; a miss (or unreadable entry) returns None.

        An entry that exists but cannot be decoded — truncated write,
        bit rot, foreign format — is *quarantined*: renamed to
        ``<key>.json.corrupt`` so the evidence survives for inspection,
        counted under ``engine.cache.quarantined``, and reported as a
        miss so the cell is simply re-profiled (and re-cached) instead
        of crashing the run.
        """
        path = self._path(key)
        started = time.perf_counter()
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            telemetry.record("engine.cache.misses")
            self._observe_lookup("miss", started)
            return None
        try:
            profile = profile_from_dict(json.loads(raw))
        except (ValueError, KeyError, TypeError):
            # Includes json.JSONDecodeError and CacheCorruption.
            self._quarantine(path)
            self.stats.misses += 1
            telemetry.record("engine.cache.misses")
            self._observe_lookup("miss", started)
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(raw)
        telemetry.record("engine.cache.hits")
        telemetry.record("engine.cache.bytes_read", len(raw))
        self._observe_lookup("hit", started)
        metrics.inc(metrics.CACHE_IO_BYTES_TOTAL, len(raw), store="profile", direction="read")
        return profile

    def _observe_lookup(self, result: str, started: float) -> None:
        metrics.observe(
            metrics.CACHE_LOOKUP_SECONDS,
            time.perf_counter() - started,
            store="profile",
            result=result,
        )
        metrics.inc(metrics.CACHE_EVENTS_TOTAL, store="profile", event=result)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (best effort) and count it."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:  # pragma: no cover - racing unlink/permissions
            pass
        self.stats.quarantined += 1
        telemetry.record("engine.cache.quarantined")
        metrics.inc(metrics.CACHE_EVENTS_TOTAL, store="profile", event="quarantined")

    def put(
        self,
        key: str,
        profile: ExecutionProfile,
        *,
        replay_mode: str | None = None,
    ) -> None:
        """Store a profile under ``key`` (atomic replace).

        ``replay_mode`` records provenance in the envelope — whether the
        profile came from a ``"batched"`` multi-config replay or a
        ``"per-config"`` one.  The two are bit-identical, so the key is
        purely informational (``repro cache info`` reports the counts)
        and readers ignore it.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = profile_to_dict(profile)
        if replay_mode is not None:
            payload["replay_mode"] = replay_mode
        raw = json.dumps(payload, separators=(",", ":")).encode()
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(raw)
        os.replace(tmp, path)
        self.stats.bytes_written += len(raw)
        telemetry.record("engine.cache.bytes_written", len(raw))
        metrics.inc(metrics.CACHE_EVENTS_TOTAL, store="profile", event="write")
        metrics.inc(metrics.CACHE_IO_BYTES_TOTAL, len(raw), store="profile", direction="write")

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def replay_modes(self) -> dict[str, int]:
        """Provenance counts over stored entries: how many profiles were
        written by a ``"batched"`` multi-config replay, a ``"per-config"``
        replay, or predate the envelope key (``"unlabeled"``)."""
        counts = {"batched": 0, "per-config": 0, "unlabeled": 0}
        for path in self.root.glob("*/*.json"):
            try:
                mode = json.loads(path.read_bytes()).get("replay_mode")
            except (OSError, ValueError):
                continue
            if mode in ("batched", "per-config"):
                counts[mode] += 1
            else:
                counts["unlabeled"] += 1
        return counts

    def total_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.root.glob("*/*.json"))

    def quarantined_entries(self) -> int:
        """How many corrupt entries have been moved aside on disk."""
        return sum(1 for _ in self.root.glob("*/*.json.corrupt"))

    def wipe(self) -> int:
        """Delete every entry (and quarantined ``*.corrupt`` remains);
        returns the number of live entries removed."""
        n = 0
        for path in self.root.glob("*/*.json.corrupt"):
            path.unlink(missing_ok=True)
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            n += 1
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return n
