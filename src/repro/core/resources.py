"""Per-stage resource attribution and an opt-in stack-sampling profiler.

Two complementary answers to "where did the run's cost go":

* **Resource attribution** — :class:`StageResourceTracker` wraps
  :func:`resource.getrusage` so each pipeline stage reports the user/sys
  CPU seconds it consumed and the process peak RSS observed while it
  ran.  The engine folds the deltas into
  :class:`~repro.core.trace.StageSpan` records (the ``resources`` field)
  and the ``repro_stage_cpu_seconds`` / ``repro_peak_rss_kb`` metric
  families, so CPU time is attributed per (benchmark, stage) with the
  same labels wall-clock already has.

* **Stack sampling** — :class:`StackSampler` is a timer-thread profiler:
  a daemon thread wakes at a fixed interval, grabs the target thread's
  frame via :func:`sys._current_frames`, and folds it into
  collapsed-stack counts (``mod:func;mod:func ... N`` — the
  flamegraph.pl / speedscope input format, written by
  :func:`render_collapsed`).  Sampling is **opt-in** via the
  ``REPRO_STACK_SAMPLE`` environment variable (truthy enables the
  default rate; a number sets the rate in Hz) and is read by workers and
  the inline path alike, so ``REPRO_STACK_SAMPLE=1 repro suite ...``
  profiles every cell.  At the default 100 Hz the wake-walk-fold loop
  costs well under the 5% overhead bound asserted in
  ``benchmarks/bench_resources.py``.

Every structure here is JSON-safe: resource dicts ride inside stage
records across the worker pool boundary, into trace journals, and into
the run ledger unchanged.
"""

from __future__ import annotations

import os
import resource
import sys
import threading
import time
from bisect import bisect_left
from typing import Any, Mapping

__all__ = [
    "SAMPLE_ENV",
    "DEFAULT_HZ",
    "StageResourceTracker",
    "StackSampler",
    "sampler_from_env",
    "merge_stacks",
    "render_collapsed",
    "top_frames",
]

#: Opt-in switch for the stack sampler: unset/falsy = off, truthy = on
#: at :data:`DEFAULT_HZ`, a number = sampling rate in Hz.
SAMPLE_ENV = "REPRO_STACK_SAMPLE"

#: Default sampling rate when :data:`SAMPLE_ENV` is a bare truthy value.
DEFAULT_HZ = 100.0

#: Values of :data:`SAMPLE_ENV` that mean "off".
_FALSY = ("", "0", "false", "no", "off")


def _rusage() -> tuple[float, float, int]:
    """(user CPU s, system CPU s, peak RSS KB) for this process.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize
    to KB so records compare across platforms.
    """
    ru = resource.getrusage(resource.RUSAGE_SELF)
    maxrss = ru.ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        maxrss //= 1024
    return ru.ru_utime, ru.ru_stime, int(maxrss)


class StageResourceTracker:
    """Per-stage ``getrusage`` deltas for one cell execution.

    Call :meth:`lap` at each stage boundary: it returns the resource
    dict for the stage that just finished and re-arms for the next one.
    Peak RSS is a process high-water mark (monotone), so each lap
    reports the current peak — the per-stage value is "the peak observed
    by the time this stage finished", which is what a leak hunt wants.
    """

    def __init__(self) -> None:
        self._user, self._sys, self._rss = _rusage()

    def lap(self, *, samples: int = 0) -> dict[str, Any]:
        user, sys_s, rss = _rusage()
        out: dict[str, Any] = {
            "cpu_user_s": max(0.0, user - self._user),
            "cpu_sys_s": max(0.0, sys_s - self._sys),
            "max_rss_kb": rss,
        }
        if samples:
            out["samples"] = samples
        self._user, self._sys, self._rss = user, sys_s, rss
        return out


class StackSampler:
    """Timer-thread stack sampler for one target thread.

    A daemon thread wakes every ``1/hz`` seconds, reads the target
    thread's current frame out of :func:`sys._current_frames`, and
    folds the walk into collapsed-stack counts.  Timestamps (on the
    ``time.perf_counter`` timeline) are kept per sample so callers can
    attribute samples to stage windows after the fact via
    :meth:`samples_between`.

    Use as a context manager around the region to profile::

        with StackSampler(hz=100) as sampler:
            ...work...
        print(render_collapsed(sampler.stacks))
    """

    def __init__(self, hz: float = DEFAULT_HZ, *, max_depth: int = 64):
        if hz <= 0:
            raise ValueError(f"StackSampler: hz must be > 0, got {hz}")
        self.interval = 1.0 / hz
        self.max_depth = max_depth
        self.stacks: dict[str, int] = {}
        self._times: list[float] = []
        self._target_id = threading.get_ident()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------ control

    def start(self) -> "StackSampler":
        if self._thread is not None:
            return self
        self._target_id = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------ results

    @property
    def total_samples(self) -> int:
        return len(self._times)

    def samples_between(self, t0: float, t1: float) -> int:
        """Samples taken in the ``perf_counter`` window ``[t0, t1)``."""
        return bisect_left(self._times, t1) - bisect_left(self._times, t0)

    # ------------------------------------------------------------ worker

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_id)
            if frame is None:
                continue
            parts: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                mod = code.co_filename.rsplit("/", 1)[-1]
                parts.append(f"{mod}:{code.co_name}")
                frame = frame.f_back
                depth += 1
            parts.reverse()  # root first, flamegraph order
            key = ";".join(parts)
            self.stacks[key] = self.stacks.get(key, 0) + 1
            self._times.append(time.perf_counter())


def sampler_from_env(env: Mapping[str, str] | None = None) -> StackSampler | None:
    """A :class:`StackSampler` per :data:`SAMPLE_ENV`, or ``None`` (off).

    ``1`` (and ``true``/``yes``/``on``) is the documented enable switch
    and means "default rate", not 1 Hz; any other number is the rate in
    Hz.
    """
    raw = (env if env is not None else os.environ).get(SAMPLE_ENV, "").strip().lower()
    if raw in _FALSY:
        return None
    if raw in ("1", "true", "yes", "on"):
        return StackSampler(hz=DEFAULT_HZ)
    try:
        hz = float(raw)
    except ValueError:
        hz = DEFAULT_HZ
    if hz <= 0:
        return None
    return StackSampler(hz=hz)


def merge_stacks(into: dict[str, int], stacks: Mapping[str, int]) -> dict[str, int]:
    """Fold one collapsed-stack count dict into an accumulator."""
    for key, n in stacks.items():
        into[key] = into.get(key, 0) + int(n)
    return into


def render_collapsed(stacks: Mapping[str, int]) -> str:
    """Collapsed-stack text: one ``frame;frame;... count`` line per stack.

    The exact input format of Brendan Gregg's ``flamegraph.pl`` and of
    speedscope's "folded stacks" importer — the profiler counterpart to
    :func:`~repro.core.trace.export_chrome_trace`'s Perfetto output.
    """
    lines = [f"{key} {n}" for key, n in sorted(stacks.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def top_frames(stacks: Mapping[str, int], limit: int = 10) -> list[tuple[str, int]]:
    """The hottest leaf frames: (frame, inclusive sample count), sorted.

    Counts samples whose *leaf* is the frame — the "self time" view a
    flat profiler prints — so the terminal summary next to the full
    flamegraph file answers "what was actually on-CPU".
    """
    leaves: dict[str, int] = {}
    for key, n in stacks.items():
        leaf = key.rsplit(";", 1)[-1]
        leaves[leaf] = leaves.get(leaf, 0) + n
    return sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
