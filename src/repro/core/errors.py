"""Typed exception hierarchy for the characterization pipeline.

Historically :mod:`repro.core.characterize` and :mod:`repro.core.cache`
raised bare ``ValueError`` for every failure mode, which made it
impossible for callers (and the fault-tolerant engine) to distinguish
"you passed nonsense" from "this cell crashed" from "the on-disk cache
is damaged".  This module gives each mode its own type:

* :class:`WorkloadError` — the request itself is invalid (empty
  workload set, misaligned workload/profile lists, unknown benchmark);
* :class:`CellFailure` — one (benchmark, workload) matrix cell failed
  to execute after every configured attempt (worker exception, timeout,
  or crashed worker process);
* :class:`CacheCorruption` — a cache entry exists but cannot be
  decoded (truncated write, bit rot, foreign format);
* :class:`VerificationError` — a benchmark executed but its output
  failed the SPEC-style miscompare check;
* :class:`StudyError` — a Section V/VII study or FDO request is
  invalid (missing profiles, too few workloads, bad parameters);
* :class:`MachineMismatch` — an FDO comparison would mix results from
  different machine configurations;
* :class:`UnknownScenarioError` — a benchmark / workload / machine /
  build id does not resolve in the scenario registry (carries
  near-miss suggestions; the CLI maps it to exit code 2);
* :class:`RegistrationError` — a scenario descriptor is malformed or
  collides with an already-registered id at registry load time.

Deprecation note: every type subclasses :class:`ReproError`, which
itself subclasses ``ValueError``, so pre-existing ``except ValueError``
call sites keep working for one deprecation cycle.  New code should
catch the typed exceptions; the ``ValueError`` base will be dropped in
a future release.
"""

from __future__ import annotations

import difflib
from collections.abc import Iterable

__all__ = [
    "ReproError",
    "WorkloadError",
    "CellFailure",
    "CacheCorruption",
    "VerificationError",
    "StudyError",
    "MachineMismatch",
    "UnknownScenarioError",
    "RegistrationError",
]


class ReproError(ValueError):
    """Base for all repro-typed errors.

    Subclasses ``ValueError`` only for backward compatibility with
    callers written against the old untyped raises; do not rely on it.
    """


class WorkloadError(ReproError):
    """The characterization request is invalid before any cell runs."""


class CellFailure(ReproError):
    """One matrix cell exhausted its attempts without producing a profile.

    Carried both as a raised exception (``strict=True``) and as a plain
    record in :class:`~repro.core.run.RunResult.failures`
    (``strict=False``).

    Attributes:
        benchmark: benchmark id of the failed cell.
        workload: workload name of the failed cell.
        attempts: how many executions were tried (1 + retries).
        outcome: ``"failed"`` (worker raised), ``"timeout"`` (exceeded
            the per-cell timeout), or ``"crashed"`` (worker process
            died and broke the pool).
        error: stringified terminal error, for humans and the trace.
    """

    def __init__(
        self,
        benchmark: str,
        workload: str,
        *,
        attempts: int,
        outcome: str = "failed",
        error: str = "",
    ):
        self.benchmark = benchmark
        self.workload = workload
        self.attempts = attempts
        self.outcome = outcome
        self.error = error
        detail = f": {error}" if error else ""
        super().__init__(
            f"cell {benchmark}/{workload} {outcome} after "
            f"{attempts} attempt{'s' if attempts != 1 else ''}{detail}"
        )

    def as_dict(self) -> dict[str, object]:
        """The trace-journal representation of this failure."""
        return {
            "benchmark": self.benchmark,
            "workload": self.workload,
            "attempts": self.attempts,
            "outcome": self.outcome,
            "error": self.error,
        }


class CacheCorruption(ReproError):
    """A result-cache entry exists but cannot be decoded.

    :class:`~repro.core.cache.ResultCache` catches this internally,
    quarantines the entry (renames it to ``*.corrupt``) and treats the
    lookup as a miss; the type is public so direct users of
    :func:`~repro.core.cache.profile_from_dict` can handle it.
    """

    def __init__(self, message: str, *, path: object = None):
        self.path = path
        super().__init__(message)


class VerificationError(ReproError):
    """A benchmark ran but its output failed verification.

    Mirrors SPEC's output-validation step: a miscompare means the run
    is invalid, whatever the counters say.  Raised by the capture stage
    (:func:`~repro.machine.capture.capture_execution`) and by
    :meth:`~repro.machine.profiler.Profiler.run`.
    """


class StudyError(ReproError):
    """A study/FDO request is invalid before anything executes.

    The studies-layer counterpart of :class:`WorkloadError`: missing
    ``keep_profiles`` data, too few workloads to cross-validate, an
    out-of-range parameter, and so on.
    """


class MachineMismatch(StudyError):
    """An FDO comparison would mix different machine configurations.

    Speedups are only meaningful when the baseline and the
    FDO-optimized replays run under the same
    :class:`~repro.machine.cost.MachineConfig`; this error rejects the
    apples-to-oranges comparison instead of silently computing it.
    """


class UnknownScenarioError(ReproError, KeyError):
    """A scenario id (benchmark, workload, machine preset, build) does
    not resolve in the registry.

    Also subclasses ``KeyError`` because the pre-registry lookups
    (``core.suite.get_benchmark``, ``machine.machine.preset``,
    ``WorkloadSet[name]``) raised bare ``KeyError``; existing
    ``except KeyError`` call sites keep working.

    Attributes:
        kind: human noun for the id space (``"benchmark"``,
            ``"machine preset"``, ``"workload"``, ...).
        scenario_id: the id that failed to resolve.
        known: the ids that *are* registered, for error rendering.
        suggestions: near-miss candidates from the known ids.
    """

    def __init__(
        self,
        kind: str,
        scenario_id: object,
        known: Iterable[str] = (),
        *,
        message: str | None = None,
    ):
        self.kind = kind
        self.scenario_id = scenario_id
        self.known = tuple(sorted(str(k) for k in known))
        self.suggestions = tuple(
            difflib.get_close_matches(str(scenario_id), self.known, n=3, cutoff=0.4)
        )
        if message is None:
            message = f"unknown {kind} {scenario_id!r}"
            if self.suggestions:
                hint = " or ".join(repr(s) for s in self.suggestions)
                message += f"; did you mean {hint}?"
            elif self.known:
                shown = ", ".join(self.known[:8])
                more = f", ... ({len(self.known)} total)" if len(self.known) > 8 else ""
                message += f"; known: {shown}{more}"
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message (quoting it); render
        # the plain text instead.
        return str(self.args[0]) if self.args else ""


class RegistrationError(ReproError):
    """A scenario descriptor is invalid at registration time.

    Raised by :mod:`repro.core.registry` for malformed descriptors
    (bad kind, empty id, non-positive version), id collisions between
    two different descriptors, and plugin entry points that fail to
    load — always *before* any characterization runs.
    """
