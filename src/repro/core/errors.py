"""Typed exception hierarchy for the characterization pipeline.

Historically :mod:`repro.core.characterize` and :mod:`repro.core.cache`
raised bare ``ValueError`` for every failure mode, which made it
impossible for callers (and the fault-tolerant engine) to distinguish
"you passed nonsense" from "this cell crashed" from "the on-disk cache
is damaged".  This module gives each mode its own type:

* :class:`WorkloadError` — the request itself is invalid (empty
  workload set, misaligned workload/profile lists, unknown benchmark);
* :class:`CellFailure` — one (benchmark, workload) matrix cell failed
  to execute after every configured attempt (worker exception, timeout,
  or crashed worker process);
* :class:`CacheCorruption` — a cache entry exists but cannot be
  decoded (truncated write, bit rot, foreign format);
* :class:`VerificationError` — a benchmark executed but its output
  failed the SPEC-style miscompare check;
* :class:`StudyError` — a Section V/VII study or FDO request is
  invalid (missing profiles, too few workloads, bad parameters);
* :class:`MachineMismatch` — an FDO comparison would mix results from
  different machine configurations.

Deprecation note: every type subclasses :class:`ReproError`, which
itself subclasses ``ValueError``, so pre-existing ``except ValueError``
call sites keep working for one deprecation cycle.  New code should
catch the typed exceptions; the ``ValueError`` base will be dropped in
a future release.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "WorkloadError",
    "CellFailure",
    "CacheCorruption",
    "VerificationError",
    "StudyError",
    "MachineMismatch",
]


class ReproError(ValueError):
    """Base for all repro-typed errors.

    Subclasses ``ValueError`` only for backward compatibility with
    callers written against the old untyped raises; do not rely on it.
    """


class WorkloadError(ReproError):
    """The characterization request is invalid before any cell runs."""


class CellFailure(ReproError):
    """One matrix cell exhausted its attempts without producing a profile.

    Carried both as a raised exception (``strict=True``) and as a plain
    record in :class:`~repro.core.run.RunResult.failures`
    (``strict=False``).

    Attributes:
        benchmark: benchmark id of the failed cell.
        workload: workload name of the failed cell.
        attempts: how many executions were tried (1 + retries).
        outcome: ``"failed"`` (worker raised), ``"timeout"`` (exceeded
            the per-cell timeout), or ``"crashed"`` (worker process
            died and broke the pool).
        error: stringified terminal error, for humans and the trace.
    """

    def __init__(
        self,
        benchmark: str,
        workload: str,
        *,
        attempts: int,
        outcome: str = "failed",
        error: str = "",
    ):
        self.benchmark = benchmark
        self.workload = workload
        self.attempts = attempts
        self.outcome = outcome
        self.error = error
        detail = f": {error}" if error else ""
        super().__init__(
            f"cell {benchmark}/{workload} {outcome} after "
            f"{attempts} attempt{'s' if attempts != 1 else ''}{detail}"
        )

    def as_dict(self) -> dict[str, object]:
        """The trace-journal representation of this failure."""
        return {
            "benchmark": self.benchmark,
            "workload": self.workload,
            "attempts": self.attempts,
            "outcome": self.outcome,
            "error": self.error,
        }


class CacheCorruption(ReproError):
    """A result-cache entry exists but cannot be decoded.

    :class:`~repro.core.cache.ResultCache` catches this internally,
    quarantines the entry (renames it to ``*.corrupt``) and treats the
    lookup as a miss; the type is public so direct users of
    :func:`~repro.core.cache.profile_from_dict` can handle it.
    """

    def __init__(self, message: str, *, path: object = None):
        self.path = path
        super().__init__(message)


class VerificationError(ReproError):
    """A benchmark ran but its output failed verification.

    Mirrors SPEC's output-validation step: a miscompare means the run
    is invalid, whatever the counters say.  Raised by the capture stage
    (:func:`~repro.machine.capture.capture_execution`) and by
    :meth:`~repro.machine.profiler.Profiler.run`.
    """


class StudyError(ReproError):
    """A study/FDO request is invalid before anything executes.

    The studies-layer counterpart of :class:`WorkloadError`: missing
    ``keep_profiles`` data, too few workloads to cross-validate, an
    out-of-range parameter, and so on.
    """


class MachineMismatch(StudyError):
    """An FDO comparison would mix different machine configurations.

    Speedups are only meaningful when the baseline and the
    FDO-optimized replays run under the same
    :class:`~repro.machine.cost.MachineConfig`; this error rejects the
    apples-to-oranges comparison instead of silently computing it.
    """
