"""Unified metrics registry: labeled counters, gauges, and histograms.

The paper's contribution is measurement; this module is the same
discipline applied to the pipeline itself.  Where
:mod:`repro.machine.telemetry` keeps flat process-global integers, this
registry keeps *labeled* metrics with *distributions*:

* :class:`Counter` — monotonically increasing integer (cells run,
  replay events, cache bytes);
* :class:`Gauge` — last/max-written value (sampling-stride high-water
  marks);
* :class:`Histogram` — bucketed distribution with exact integer bucket
  counts (stage latencies, replay throughput).

Histograms use **fixed log-scale bucket boundaries** (a 1-2-5 series
per decade, see :func:`log_buckets`), never data-dependent ones, so two
histograms of the same metric always share boundaries and merging them
is *exact*: bucket counts and observation counts add as integers —
``merge(a, b)`` holds precisely the counts of the concatenated sample
streams (property-tested in ``tests/test_metrics.py``).  That is what
lets worker-side registries serialize across the
``ProcessPoolExecutor`` boundary (:meth:`MetricsRegistry.to_dict` is
plain JSON types) and aggregate losslessly into the parent's registry.

Registry topology:

* one **process-global** registry (:func:`global_registry`) — the
  lifetime aggregate, the moral successor of ``telemetry.counters()``;
* **per-run child registries** — :meth:`MetricsRegistry.child` creates
  a write-through child: observations recorded in the child also land
  in its parent, so a :class:`~repro.core.run.Session` hands each run a
  child and the session registry aggregates every run;
* **collector scopes** — instrumented call sites deep in the stack
  (cache lookups, replay kernels) record through the module-level
  helpers :func:`inc` / :func:`observe` / :func:`gauge_set`, which hit
  the global registry plus every registry pushed with
  :func:`collector`.  The engine pushes the current run's registry, so
  instrumentation never needs a registry threaded through it.

Metric *names* are registered once in the module-level :data:`CATALOG`
(the ``MetricSpec`` constants below).  Call sites pass the spec object,
never a string literal — ``tests/test_metrics.py`` greps the source
tree and fails on ad-hoc ``registry.counter("...")`` literals, so the
catalog is the single source of truth and names cannot drift.

Label cardinality rules (enforced by convention, documented in
DESIGN.md §11): ``benchmark`` (≤ ~20 values), ``workload`` (≤ ~30 per
benchmark — only on counters, never on histograms), ``stage`` (4),
``worker`` (pool size), plus small enums (``outcome``, ``cache``,
``store``, ``result``, ``direction``, ``event``).

Exporters: :func:`render_prometheus` (text exposition format, one
``# HELP``/``# TYPE`` block per family, cumulative ``_bucket{le=...}``
series) and :func:`render_metrics_table` (terminal table with
p50/p95/p99 per histogram group, backing ``repro metrics show``).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = [
    "MetricSpec",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CATALOG",
    "log_buckets",
    "global_registry",
    "reset_global_registry",
    "collector",
    "inc",
    "observe",
    "gauge_set",
    "merge_snapshot",
    "render_prometheus",
    "render_metrics_table",
    "metrics_table_data",
    "load_snapshot",
    # catalog constants
    "STAGE_SECONDS",
    "CELL_SECONDS",
    "CELLS_TOTAL",
    "RETRIES_TOTAL",
    "RUNS_TOTAL",
    "WORKER_CELLS_TOTAL",
    "EVENTS_EMITTED_TOTAL",
    "REPLAY_EVENTS_TOTAL",
    "REPLAY_NS_TOTAL",
    "REPLAY_EPS",
    "SAMPLED_REPLAYS_TOTAL",
    "SAMPLED_EVENT_RATIO",
    "SAMPLING_STRIDE_MAX",
    "CACHE_LOOKUP_SECONDS",
    "CACHE_EVENTS_TOTAL",
    "CACHE_IO_BYTES_TOTAL",
    "STAGE_CPU_SECONDS",
    "PEAK_RSS_KB",
    "STACK_SAMPLES_TOTAL",
]

#: Snapshot schema version (bump with the to_dict layout).
SNAPSHOT_SCHEMA = 1


def log_buckets(lo_exp: int, hi_exp: int) -> tuple[float, ...]:
    """Fixed log-scale boundaries: a 1-2-5 series per decade.

    ``log_buckets(-3, 1)`` → ``(0.001, 0.002, 0.005, ..., 10.0, 20.0,
    50.0)``.  The series is a pure function of the exponent range —
    never of the data — so every histogram of a given spec shares
    boundaries and bucket-count merges are exact.
    """
    # float(f"{...:.2e}") snaps 5 * 10**-6 == 4.999...e-06 back to 5e-06
    # so exported `le` labels are the exact decimal boundaries.
    return tuple(
        float(f"{m * 10.0 ** e:.2e}")
        for e in range(lo_exp, hi_exp + 1)
        for m in (1, 2, 5)
    )


#: Boundaries for wall-clock stage/cell latencies (1µs .. 50s).
SECONDS_BUCKETS = log_buckets(-6, 1)
#: Boundaries for replay throughput in events/second (1k .. 500M).
EPS_BUCKETS = log_buckets(3, 8)
#: Boundaries for sampled-replay event-reduction ratios (1x .. 5000x).
RATIO_BUCKETS = log_buckets(0, 3)


@dataclass(frozen=True)
class MetricSpec:
    """The registered identity of one metric family.

    ``labels`` is ordered: label values are keyed positionally in this
    order everywhere (children, snapshots, merges).
    """

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    labels: tuple[str, ...] = ()
    buckets: tuple[float, ...] | None = None  # histograms only


#: Every metric the pipeline may emit, keyed by name.  The single
#: source of truth: call sites reference the constants below, and the
#: lint test in ``tests/test_metrics.py`` rejects ad-hoc name literals.
CATALOG: dict[str, MetricSpec] = {}


def _spec(
    name: str,
    kind: str,
    help: str,
    labels: tuple[str, ...] = (),
    buckets: tuple[float, ...] | None = None,
) -> MetricSpec:
    if name in CATALOG:
        raise ValueError(f"duplicate metric name {name!r}")
    if kind == "histogram" and buckets is None:
        raise ValueError(f"histogram {name!r} needs fixed buckets")
    spec = MetricSpec(name=name, kind=kind, help=help, labels=labels, buckets=buckets)
    CATALOG[name] = spec
    return spec


STAGE_SECONDS = _spec(
    "repro_stage_seconds",
    "histogram",
    "Wall-clock seconds per pipeline stage (generate/capture/replay/summarize)",
    ("benchmark", "stage"),
    SECONDS_BUCKETS,
)
CELL_SECONDS = _spec(
    "repro_cell_seconds",
    "histogram",
    "End-to-end wall-clock seconds per (benchmark, workload) matrix cell",
    ("benchmark", "outcome"),
    SECONDS_BUCKETS,
)
CELLS_TOTAL = _spec(
    "repro_cells_total",
    "counter",
    "Matrix cells settled, by outcome and cell-level cache state",
    ("benchmark", "outcome", "cache"),
)
RETRIES_TOTAL = _spec(
    "repro_retries_total",
    "counter",
    "Cell attempts beyond the first",
    ("benchmark",),
)
RUNS_TOTAL = _spec(
    "repro_runs_total",
    "counter",
    "Finalized engine runs (one per closed trace journal)",
)
WORKER_CELLS_TOTAL = _spec(
    "repro_worker_cells_total",
    "counter",
    "Cells executed per worker process",
    ("worker",),
)
EVENTS_EMITTED_TOTAL = _spec(
    "repro_events_emitted_total",
    "counter",
    "Sampled telemetry events captured from benchmark executions",
    ("benchmark",),
)
REPLAY_EVENTS_TOTAL = _spec(
    "repro_replay_events_total",
    "counter",
    "Telemetry events replayed through the machine model",
    ("benchmark",),
)
REPLAY_NS_TOTAL = _spec(
    "repro_replay_ns_total",
    "counter",
    "Nanoseconds spent in machine-model replay",
    ("benchmark",),
)
REPLAY_EPS = _spec(
    "repro_replay_eps",
    "histogram",
    "Replay-kernel throughput per evaluation, events/second",
    ("benchmark",),
    EPS_BUCKETS,
)
SAMPLED_REPLAYS_TOTAL = _spec(
    "repro_sampled_replays_total",
    "counter",
    "Phase-sampled replays through the machine model",
    ("benchmark",),
)
SAMPLED_EVENT_RATIO = _spec(
    "repro_sampled_event_ratio",
    "histogram",
    "Exact-to-replayed event ratio per phase-sampled replay",
    ("benchmark",),
    RATIO_BUCKETS,
)
SAMPLING_STRIDE_MAX = _spec(
    "repro_sampling_stride_max",
    "gauge",
    "Largest telemetry decimation stride seen (gauges merge by max)",
    ("benchmark",),
)
CACHE_LOOKUP_SECONDS = _spec(
    "repro_cache_lookup_seconds",
    "histogram",
    "Artifact-store lookup latency, by stage store and hit/miss result",
    ("store", "result"),
    SECONDS_BUCKETS,
)
CACHE_EVENTS_TOTAL = _spec(
    "repro_cache_events_total",
    "counter",
    "Artifact-store traffic events (hit/miss/write/quarantined)",
    ("store", "event"),
)
CACHE_IO_BYTES_TOTAL = _spec(
    "repro_cache_io_bytes_total",
    "counter",
    "Artifact-store bytes moved, by direction",
    ("store", "direction"),
)
STAGE_CPU_SECONDS = _spec(
    "repro_stage_cpu_seconds",
    "histogram",
    "CPU seconds attributed per pipeline stage via getrusage deltas",
    ("benchmark", "stage", "cpu"),  # cpu = "user" | "sys"
    SECONDS_BUCKETS,
)
PEAK_RSS_KB = _spec(
    "repro_peak_rss_kb",
    "gauge",
    "Peak resident set size (KB) observed while a benchmark's cells ran",
    ("benchmark",),
)
STACK_SAMPLES_TOTAL = _spec(
    "repro_stack_samples_total",
    "counter",
    "Profiler stack samples attributed to a pipeline stage (opt-in)",
    ("benchmark", "stage"),
)


# ------------------------------------------------------------ instruments


class Counter:
    """Monotonically increasing integer, optionally forwarding to a
    parent registry's counter (write-through children)."""

    __slots__ = ("value", "_link")

    def __init__(self, link: "Counter | None" = None):
        self.value = 0
        self._link = link

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increments must be >= 0, got {n}")
        self.value += n
        if self._link is not None:
            self._link.inc(n)


class Gauge:
    """Last-written value; merges take the max (high-water semantics)."""

    __slots__ = ("value", "_link")

    def __init__(self, link: "Gauge | None" = None):
        self.value = 0
        self._link = link

    def set(self, v: float) -> None:
        self.value = v
        if self._link is not None:
            self._link.set(v)

    def set_max(self, v: float) -> None:
        if v > self.value:
            self.value = v
        if self._link is not None:
            self._link.set_max(v)

    def merge_value(self, v: float) -> None:
        self.set_max(v)


class Histogram:
    """Fixed-boundary histogram with exact integer bucket counts.

    ``counts[i]`` tallies observations ``<= buckets[i]``; the final slot
    is the overflow (+Inf) bucket.  ``sum`` is a float accumulator for
    the mean; counts are the exact, losslessly mergeable part.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "_link")

    def __init__(self, buckets: tuple[float, ...], link: "Histogram | None" = None):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self._link = link

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.buckets, v)] += 1
        self.sum += v
        self.count += 1
        if self._link is not None:
            self._link.observe(v)

    def merge_counts(self, counts: list[int], total: float, n: int) -> None:
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram merge: {len(counts)} buckets vs {len(self.counts)}"
            )
        for i, c in enumerate(counts):
            self.counts[i] += c
        self.sum += total
        self.count += n
        if self._link is not None:
            self._link.merge_counts(counts, total, n)

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the target bucket, the same scheme
        Prometheus ``histogram_quantile`` uses; observations beyond the
        last boundary clamp to it.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= rank and c:
                if i >= len(self.buckets):
                    return self.buckets[-1]
                lo = self.buckets[i - 1] if i else 0.0
                hi = self.buckets[i]
                return lo + (hi - lo) * (rank - (cum - c)) / c
        return self.buckets[-1]


_Instrument = Counter | Gauge | Histogram


# --------------------------------------------------------------- registry


class MetricsRegistry:
    """A set of labeled metric families, mergeable and serializable.

    ``child()`` creates a write-through child: every observation in the
    child is forwarded to the parent, so a session registry aggregates
    its runs live.  ``merge()`` / ``to_dict()`` / ``from_dict()`` move
    whole registries across process boundaries losslessly (JSON-safe
    types only); merges forward through parent links too.
    """

    def __init__(self, parent: "MetricsRegistry | None" = None):
        self._parent = parent
        self._families: dict[str, dict[tuple[str, ...], _Instrument]] = {}
        self._specs: dict[str, MetricSpec] = {}
        self._lock = threading.Lock()

    def child(self) -> "MetricsRegistry":
        return MetricsRegistry(parent=self)

    # ------------------------------------------------------- instruments

    def _instrument(self, spec: MetricSpec, labels: Mapping[str, Any]) -> _Instrument:
        if set(labels) != set(spec.labels):
            raise ValueError(
                f"{spec.name}: labels {sorted(labels)} != declared {sorted(spec.labels)}"
            )
        key = tuple(str(labels[name]) for name in spec.labels)
        with self._lock:
            family = self._families.setdefault(spec.name, {})
            inst = family.get(key)
            if inst is None:
                registered = self._specs.setdefault(spec.name, spec)
                if registered != spec:
                    raise ValueError(f"conflicting specs registered for {spec.name!r}")
                # NB: explicit None check — __len__ makes an empty parent falsy.
                link = (
                    self._parent._instrument(spec, labels)
                    if self._parent is not None
                    else None
                )
                if spec.kind == "counter":
                    inst = Counter(link)  # type: ignore[arg-type]
                elif spec.kind == "gauge":
                    inst = Gauge(link)  # type: ignore[arg-type]
                else:
                    inst = Histogram(spec.buckets, link)  # type: ignore[arg-type]
                family[key] = inst
            return inst

    def counter(self, spec: MetricSpec, **labels: Any) -> Counter:
        if spec.kind != "counter":
            raise ValueError(f"{spec.name} is a {spec.kind}, not a counter")
        return self._instrument(spec, labels)  # type: ignore[return-value]

    def gauge(self, spec: MetricSpec, **labels: Any) -> Gauge:
        if spec.kind != "gauge":
            raise ValueError(f"{spec.name} is a {spec.kind}, not a gauge")
        return self._instrument(spec, labels)  # type: ignore[return-value]

    def histogram(self, spec: MetricSpec, **labels: Any) -> Histogram:
        if spec.kind != "histogram":
            raise ValueError(f"{spec.name} is a {spec.kind}, not a histogram")
        return self._instrument(spec, labels)  # type: ignore[return-value]

    # -------------------------------------------------------- inspection

    def collect(self) -> Iterator[tuple[MetricSpec, tuple[str, ...], _Instrument]]:
        """Every (spec, label values, instrument) triple, sorted."""
        for name in sorted(self._families):
            spec = self._specs[name]
            for key in sorted(self._families[name]):
                yield spec, key, self._families[name][key]

    def value(self, spec: MetricSpec, **labels: Any) -> float | int | None:
        """A counter/gauge value (or None if the series never recorded)."""
        key = tuple(str(labels[name]) for name in spec.labels)
        inst = self._families.get(spec.name, {}).get(key)
        if inst is None:
            return None
        if isinstance(inst, Histogram):
            raise ValueError(f"{spec.name} is a histogram; use .histogram(...)")
        return inst.value

    def __len__(self) -> int:
        return sum(len(f) for f in self._families.values())

    # ------------------------------------------------- snapshots & merge

    def to_dict(self) -> dict[str, Any]:
        """Lossless JSON-safe snapshot (the pool-boundary wire format)."""
        families: dict[str, Any] = {}
        for name in sorted(self._families):
            spec = self._specs[name]
            series = []
            for key in sorted(self._families[name]):
                inst = self._families[name][key]
                if isinstance(inst, Histogram):
                    series.append(
                        {
                            "labels": list(key),
                            "counts": list(inst.counts),
                            "sum": inst.sum,
                            "count": inst.count,
                        }
                    )
                else:
                    series.append({"labels": list(key), "value": inst.value})
            families[name] = {
                "kind": spec.kind,
                "help": spec.help,
                "labels": list(spec.labels),
                "buckets": list(spec.buckets) if spec.buckets else None,
                "series": series,
            }
        return {"schema": SNAPSHOT_SCHEMA, "metrics": families}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        reg = cls()
        reg.merge(data)
        return reg

    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> None:
        """Add ``other``'s observations into this registry (exactly).

        Counters add, histograms add bucket-wise, gauges take the max.
        Merged amounts forward through parent links like live
        observations, so merging a worker snapshot into a run child
        also lands in the session registry.
        """
        if isinstance(other, MetricsRegistry):
            other = other.to_dict()
        if other.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(f"unsupported metrics snapshot schema {other.get('schema')!r}")
        for name, family in other["metrics"].items():
            spec = CATALOG.get(name)
            if spec is None or [list(spec.labels), spec.kind] != [
                family["labels"],
                family["kind"],
            ]:
                spec = MetricSpec(
                    name=name,
                    kind=family["kind"],
                    help=family.get("help", ""),
                    labels=tuple(family["labels"]),
                    buckets=tuple(family["buckets"]) if family.get("buckets") else None,
                )
            for s in family["series"]:
                labels = dict(zip(spec.labels, s["labels"]))
                inst = self._instrument(spec, labels)
                if isinstance(inst, Histogram):
                    inst.merge_counts(s["counts"], s["sum"], s["count"])
                elif isinstance(inst, Gauge):
                    inst.merge_value(s["value"])
                else:
                    inst.inc(s["value"])


# ------------------------------------------- global registry & collectors

_GLOBAL = MetricsRegistry()
_ACTIVE: list[MetricsRegistry] = []


def global_registry() -> MetricsRegistry:
    """The process-lifetime aggregate registry."""
    return _GLOBAL


def reset_global_registry() -> None:
    """Replace the global registry with an empty one (tests)."""
    global _GLOBAL
    _GLOBAL = MetricsRegistry()


@contextmanager
def collector(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route module-level observations into ``registry`` too.

    The engine pushes the current run's registry around its work so
    deep call sites (cache stores, the replay path) need no registry
    threaded through them.  Nesting pushes a stack; the global registry
    always records regardless.
    """
    _ACTIVE.append(registry)
    try:
        yield registry
    finally:
        _ACTIVE.remove(registry)


def _targets() -> list[MetricsRegistry]:
    return [_GLOBAL, *_ACTIVE]


def inc(spec: MetricSpec, n: int = 1, **labels: Any) -> None:
    """Add ``n`` to a counter in the global registry + active collectors."""
    for reg in _targets():
        reg.counter(spec, **labels).inc(n)


def observe(spec: MetricSpec, value: float, **labels: Any) -> None:
    """Observe ``value`` in a histogram (global + active collectors)."""
    for reg in _targets():
        reg.histogram(spec, **labels).observe(value)


def gauge_set(spec: MetricSpec, value: float, **labels: Any) -> None:
    """Raise a gauge to ``value`` (max semantics; global + collectors)."""
    for reg in _targets():
        reg.gauge(spec, **labels).set_max(value)


def merge_snapshot(snapshot: "Mapping[str, Any] | MetricsRegistry") -> None:
    """Merge a worker-side registry snapshot into global + collectors.

    The parent-side half of the pool-boundary transport: a worker's
    observations never hit this process's global registry or active
    collector stack, so the engine merges the shipped snapshot into
    both — the same fan-out a live :func:`observe` would have had.
    """
    for reg in _targets():
        reg.merge(snapshot)


def load_snapshot(path: str | Path) -> MetricsRegistry:
    """Load a ``--metrics`` JSON snapshot back into a registry."""
    with Path(path).open(encoding="utf-8") as fh:
        return MetricsRegistry.from_dict(json.load(fh))


# -------------------------------------------------------------- exporters


def _format_value(v: float) -> str:
    """Prometheus sample value: integers without a decimal point."""
    if isinstance(v, int) or (isinstance(v, float) and v.is_integer()):
        return str(int(v))
    return repr(v)


def _escape_label(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    current = None
    for spec, key, inst in registry.collect():
        if spec.name != current:
            lines.append(f"# HELP {spec.name} {spec.help}")
            lines.append(f"# TYPE {spec.name} {spec.kind}")
            current = spec.name
        if isinstance(inst, Histogram):
            cum = 0
            for bound, count in zip(inst.buckets, inst.counts):
                cum += count
                le = _label_str(spec.labels, key, f'le="{_format_value(bound)}"')
                lines.append(f"{spec.name}_bucket{le} {cum}")
            le = _label_str(spec.labels, key, 'le="+Inf"')
            lines.append(f"{spec.name}_bucket{le} {inst.count}")
            labels = _label_str(spec.labels, key)
            lines.append(f"{spec.name}_sum{labels} {_format_value(inst.sum)}")
            lines.append(f"{spec.name}_count{labels} {inst.count}")
        else:
            labels = _label_str(spec.labels, key)
            lines.append(f"{spec.name}{labels} {_format_value(inst.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


#: Labels dropped when grouping for the terminal table — the
#: high-cardinality dimensions; what remains (stage, outcome, store...)
#: is the operator-facing breakdown.
_HIGH_CARDINALITY = ("benchmark", "workload", "worker")


def _group_key(spec: MetricSpec, key: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(
        f"{n}={v}" for n, v in zip(spec.labels, key) if n not in _HIGH_CARDINALITY
    )


def _aggregate_table(
    registry: MetricsRegistry,
) -> tuple[
    dict[tuple[str, tuple[str, ...]], Histogram],
    dict[tuple[str, tuple[str, ...]], float],
    dict[str, str],
]:
    """Re-aggregate a registry over the high-cardinality labels.

    Exact for histograms (shared fixed buckets); counters sum, gauges
    take the max.  Shared by the table and JSON renderers.
    """
    hists: dict[tuple[str, tuple[str, ...]], Histogram] = {}
    scalars: dict[tuple[str, tuple[str, ...]], float] = {}
    kinds: dict[str, str] = {}
    for spec, key, inst in registry.collect():
        group = (spec.name, _group_key(spec, key))
        kinds[spec.name] = spec.kind
        if isinstance(inst, Histogram):
            agg = hists.get(group)
            if agg is None:
                agg = hists[group] = Histogram(spec.buckets)
            agg.merge_counts(inst.counts, inst.sum, inst.count)
        elif isinstance(inst, Gauge):
            scalars[group] = max(scalars.get(group, 0), inst.value)
        else:
            scalars[group] = scalars.get(group, 0) + inst.value
    return hists, scalars, kinds


def metrics_table_data(registry: MetricsRegistry) -> dict[str, Any]:
    """The ``repro metrics show`` aggregation as JSON-ready rows.

    The machine-consumable twin of :func:`render_metrics_table` —
    identical grouping and quantiles, emitted as a dict for
    ``repro metrics show --json`` and service clients.
    """
    hists, scalars, kinds = _aggregate_table(registry)
    return {
        "histograms": [
            {
                "metric": name,
                "labels": list(group),
                "count": h.count,
                "p50": h.percentile(0.50),
                "p95": h.percentile(0.95),
                "p99": h.percentile(0.99),
                "total": h.sum,
            }
            for (name, group), h in sorted(hists.items())
        ],
        "scalars": [
            {
                "metric": name,
                "labels": list(group),
                "value": v,
                "kind": kinds.get(name, "counter"),
            }
            for (name, group), v in sorted(scalars.items())
        ],
    }


def render_metrics_table(registry: MetricsRegistry) -> str:
    """Terminal table for ``repro metrics show``.

    Histograms are re-aggregated (exactly — shared fixed buckets) over
    the high-cardinality labels, so ``repro_stage_seconds`` prints one
    p50/p95/p99 row per *stage*; counters and gauges sum/max the same
    way.
    """
    hists, scalars, kinds = _aggregate_table(registry)

    lines = []
    if hists:
        lines.append(
            f"{'metric':<28} {'labels':<22} {'count':>8} "
            f"{'p50':>10} {'p95':>10} {'p99':>10} {'total':>10}"
        )
        for (name, group), h in sorted(hists.items()):
            lines.append(
                f"{name:<28} {','.join(group) or '-':<22} {h.count:>8} "
                f"{h.percentile(0.50):>10.4g} {h.percentile(0.95):>10.4g} "
                f"{h.percentile(0.99):>10.4g} {h.sum:>10.4g}"
            )
    if scalars:
        if lines:
            lines.append("")
        lines.append(f"{'metric':<28} {'labels':<22} {'value':>12}")
        for (name, group), v in sorted(scalars.items()):
            tag = " (max)" if kinds.get(name) == "gauge" else ""
            lines.append(
                f"{name:<28} {','.join(group) or '-':<22} {_format_value(v):>12}{tag}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"
