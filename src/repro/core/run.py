"""The single entry point for characterization runs: ``Run`` / ``Session``.

Before this module existed, ``characterize()`` / ``characterize_suite()``
each carried a duplicated ``workers != 1 or cache is not None`` dispatch
between a private serial loop and the engine.  Now the
:class:`~repro.core.engine.CharacterizationEngine` is the *only*
execution path — ``workers=1, cache=None`` is simply its serial special
case (verified bit-identical to the old loop in
``tests/test_run.py``) — and this module is the API over it:

* :class:`Session` — a context manager owning one engine and one trace
  journal across any number of characterization calls.  Use it when
  several runs should share a cache, a worker pool configuration, and
  a single JSONL journal::

      with Session(workers=4, cache="~/.cache/repro", trace="run.jsonl") as s:
          mcf = s.characterize("505.mcf_r")
          table2 = s.characterize_suite()
      summary = s.summary  # RunSummary for everything the session ran

* :class:`Run` — the one-shot facade: configure once, call once, the
  journal is finalized when the call returns::

      result = Run(workers=4, strict=False).characterize_suite()
      result.characterizations   # every benchmark that completed
      result.failures            # CellFailure records for the rest

Every call returns a :class:`RunResult`.  Under ``strict=True`` (the
default) a failed cell raises :class:`~repro.core.errors.CellFailure`
after the journal is written; under ``strict=False`` the run completes,
unaffected benchmarks are bit-identical to a clean run, and the failed
cells are reported in ``result.failures`` and the journal.
"""

from __future__ import annotations

import os
import time
import warnings
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from typing import Any

from ..machine import telemetry
from ..machine.capture import TelemetryCapture
from ..machine.cost import MachineConfig
from ..machine.profiler import ExecutionProfile
from . import metrics as metrics_mod
from .artifacts import ArtifactStore
from .cache import ResultCache, payload_digest
from .engine import _ENGINE_MACHINE, CharacterizationEngine, CellOutcome, _Cell
from .errors import CellFailure
from .ledger import LEDGER_ENV, RunLedger, build_record
from .metrics import MetricsRegistry
from .registry import REGISTRY, alberta_workloads
from .resources import render_collapsed
from .sweep import ENGINE_MACHINE, MachineGrid, ReplayRequest, SweepRequest
from .trace import RunSummary, TraceWriter, export_chrome_trace
from .workload import Workload, WorkloadSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..machine.sampling import SamplingPlan
    from .characterize import BenchmarkCharacterization

__all__ = [
    "Run",
    "RunResult",
    "Session",
    "SweepResult",
    # Re-exported request types (defined in repro.core.sweep).
    "MachineGrid",
    "ReplayRequest",
    "SweepRequest",
]


@dataclass
class RunResult:
    """What one characterization call produced.

    ``summary`` is filled in by :class:`Run` one-shots (whose journal
    closes with the call) and by :meth:`Session.close` for the last
    result of a session; mid-session results carry ``summary=None``
    because the journal is still open.
    """

    characterizations: "list[BenchmarkCharacterization]"
    failures: list[CellFailure] = field(default_factory=list)
    summary: RunSummary | None = None
    trace_path: Path | None = None
    #: This call's own metric observations (a write-through child of the
    #: session registry), including worker-side merges.
    metrics: MetricsRegistry | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def characterization(self) -> "BenchmarkCharacterization | None":
        """The single characterization of a one-benchmark run (or None)."""
        return self.characterizations[0] if self.characterizations else None

    @property
    def failed_cells(self) -> list[tuple[str, str]]:
        """(benchmark, workload) pairs that exhausted their attempts."""
        return [(f.benchmark, f.workload) for f in self.failures]

    @property
    def partial_benchmarks(self) -> set[str]:
        """Benchmarks that completed but are missing failed cells."""
        completed = {c.benchmark_id for c in self.characterizations}
        return completed & {f.benchmark for f in self.failures}


@dataclass
class SweepResult:
    """What one machine-config sweep produced.

    ``characterizations[i]`` belongs to ``machines[i]`` — the grid's
    stable config ordering, with ``config_names[i]`` naming each slot
    (auto ``cfg0..cfgN-1`` for legacy bare-list calls) — and is ``None``
    where no cell survived under ``strict=False``.  The sweep-reuse
    guarantee shows up in ``summary``: ``captures`` stays at one per
    workload no matter how many configs were swept, and
    ``replays_batched`` counts the cells served by the one-pass
    multi-config kernel.
    """

    machines: "list[MachineConfig | None]"
    characterizations: "list[BenchmarkCharacterization | None]"
    failures: list[CellFailure] = field(default_factory=list)
    summary: RunSummary | None = None
    trace_path: Path | None = None
    metrics: MetricsRegistry | None = None
    config_names: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def profile_for(self, config_name: str) -> "BenchmarkCharacterization | None":
        """The characterization for one named grid config.

        Raises :class:`KeyError` for a name outside the grid; returns
        ``None`` for a config whose cells all failed (``strict=False``).
        """
        try:
            i = self.config_names.index(config_name)
        except ValueError:
            raise KeyError(
                f"sweep has no config named {config_name!r}; "
                f"have {self.config_names}"
            ) from None
        return self.characterizations[i]


class Session:
    """One engine + one trace journal across many characterization calls.

    Accepts the full engine configuration (see
    :class:`~repro.core.engine.CharacterizationEngine`); the default
    ``workers=1, cache=None`` is the engine's serial special case, so a
    bare ``Session()`` behaves exactly like the historical serial loop.
    """

    def __init__(
        self,
        *,
        workers: int | None = 1,
        cache: ArtifactStore | ResultCache | str | Path | None = None,
        machine: MachineConfig | None = None,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
        strict: bool = True,
        trace: TraceWriter | str | Path | None = None,
        max_pool_restarts: int = 3,
        ledger: "RunLedger | str | Path | None" = None,
    ):
        if not isinstance(trace, TraceWriter):
            trace = TraceWriter(trace)
        self._writer = trace
        self.engine = CharacterizationEngine(
            workers=workers,
            cache=cache,
            machine=machine,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            strict=strict,
            trace=trace,
            max_pool_restarts=max_pool_restarts,
        )
        from .. import __version__

        self._writer.start(
            {
                "version": __version__,
                "workers": self.engine.workers,
                "cache": self.engine.cache is not None,
                "strict": strict,
                "timeout": timeout,
                "retries": retries,
            }
        )
        #: The session-wide metrics aggregate; every call records into a
        #: write-through child of this registry.
        self.metrics = MetricsRegistry()
        #: Per-session window onto the process-global telemetry counters
        #: (``session.telemetry.counters("engine.run")`` is this
        #: session's traffic only; ``telemetry.totals()`` keeps the
        #: cross-run process view).
        self.telemetry = telemetry.Scope()
        if ledger is None:
            env_dir = os.environ.get(LEDGER_ENV, "").strip()
            ledger = env_dir or None
        if ledger is not None and not isinstance(ledger, RunLedger):
            ledger = RunLedger(ledger)
        #: Run-history store this session appends to on close (opt-in via
        #: the ``ledger`` argument or ``REPRO_LEDGER_DIR``).
        self.ledger = ledger
        self._grids: set[str] = set()
        self._closed = False

    @contextmanager
    def _collect(self) -> "Iterator[MetricsRegistry]":
        """A per-call child registry, active as a module-level collector.

        Engine instrumentation (and worker-snapshot merges) recorded
        while the context is open land in the child and, via its
        write-through link, in :attr:`metrics`.
        """
        reg = self.metrics.child()
        with metrics_mod.collector(reg):
            yield reg

    # ------------------------------------------------------------- runs

    def characterize(
        self,
        benchmark_id: str,
        workloads: WorkloadSet | None = None,
        *,
        base_seed: int = 0,
        keep_profiles: bool = False,
    ) -> RunResult:
        """Characterize one benchmark; failures per the session's ``strict``."""
        with self._collect() as reg:
            char, outcomes = self.engine.characterize_run(
                benchmark_id, workloads, base_seed=base_seed, keep_profiles=keep_profiles
            )
        return self._result([char] if char is not None else [], outcomes, reg)

    def characterize_suite(
        self,
        *,
        suite: str | None = None,
        table2_only: bool = True,
        base_seed: int = 0,
        ids: list[str] | None = None,
    ) -> RunResult:
        """Characterize the whole suite (or an ``ids`` subset) as one flat matrix."""
        with self._collect() as reg:
            chars, outcomes = self.engine.characterize_suite_run(
                suite=suite, table2_only=table2_only, base_seed=base_seed, ids=ids
            )
        return self._result(chars, outcomes, reg)

    def characterize_sweep(
        self,
        request: "SweepRequest | str",
        machines: "list[MachineConfig | None] | None" = None,
        workloads: WorkloadSet | None = None,
        *,
        base_seed: int = 0,
        keep_profiles: bool = False,
        sampling: "SamplingPlan | None" = None,
        batched: bool | None = None,
    ) -> SweepResult:
        """Characterize one benchmark under every config in a grid.

        The declarative form takes a
        :class:`~repro.core.sweep.SweepRequest`::

            grid = MachineGrid.from_presets("default", "i7-6700k")
            result = session.characterize_sweep(SweepRequest("505.mcf_r", grid))
            result.profile_for("i7-6700k")

        The legacy form — positional benchmark id plus a bare machine
        list — still works through a thin adapter (configs are
        auto-named ``cfg0..cfgN-1``) but emits a
        :class:`DeprecationWarning`; build a :class:`SweepRequest`
        instead.

        Each workload's benchmark executes at most once; every machine
        config replays the captured telemetry stream, and exact replays
        share one batched kernel pass per workload (see
        :meth:`~repro.core.engine.CharacterizationEngine.characterize_sweep_run`).
        ``sampling`` switches every replay to the phase-sampled path
        (``summary.replays_sampled`` counts them).
        """
        if isinstance(request, SweepRequest):
            if machines is not None:
                raise TypeError(
                    "characterize_sweep: pass either a SweepRequest or a "
                    "machine list, not both"
                )
            if base_seed != 0 or keep_profiles or sampling is not None or batched is not None:
                raise TypeError(
                    "characterize_sweep: with a SweepRequest, set base_seed/"
                    "keep_profiles/sampling/batched on the request itself"
                )
            req = request
        else:
            if machines is None:
                raise TypeError(
                    "characterize_sweep: a benchmark-id call needs a machine list "
                    "(or pass a SweepRequest)"
                )
            warnings.warn(
                "characterize_sweep(benchmark_id, machines, ...) is deprecated; "
                "pass a SweepRequest whose MachineGrid names each config — "
                "registry presets resolve via MachineGrid.from_presets() "
                "(see repro.core.sweep and repro.core.registry)",
                DeprecationWarning,
                stacklevel=2,
            )
            req = SweepRequest(
                benchmark=request,
                grid=MachineGrid.from_machines(machines),
                base_seed=base_seed,
                keep_profiles=keep_profiles,
                sampling=sampling,
                batched=batched,
            )
        self._grids.update(req.grid.names)
        with self._collect() as reg:
            chars, outcomes = self.engine.characterize_sweep_run(
                req.benchmark,
                list(req.grid.machines),
                workloads,
                base_seed=req.base_seed,
                keep_profiles=req.keep_profiles,
                sampling=req.sampling,
                batched=req.batched,
            )
        return SweepResult(
            machines=list(req.grid.machines),
            characterizations=chars,
            failures=[oc.failure() for oc in outcomes if not oc.ok],
            trace_path=self._writer.path,
            metrics=reg,
            config_names=list(req.grid.names),
        )

    # ------------------------------------------------------ stage access

    def capture(
        self,
        benchmark_id: str,
        workload: "Workload | str",
        *,
        base_seed: int = 0,
    ) -> TelemetryCapture | None:
        """Run (or reuse) the capture stage for one workload.

        ``workload`` may be a :class:`Workload` or the name of one of
        the benchmark's default Alberta workloads.  Returns the
        machine-independent telemetry capture — feed it to
        :meth:`replay` any number of times.  ``None`` only under
        ``strict=False`` when the capture failed.
        """
        caps = self.capture_set(
            benchmark_id, [self._resolve(benchmark_id, workload, base_seed)],
            base_seed=base_seed,
        )
        return caps[0]

    def capture_set(
        self,
        benchmark_id: str,
        workloads: "WorkloadSet | list[Workload] | None" = None,
        *,
        base_seed: int = 0,
    ) -> "list[TelemetryCapture | None]":
        """Capture every workload (default: the benchmark's Alberta set).

        One engine pass — parallel across cache-missed workloads — and
        one capture per workload however many times it is re-requested
        (in-process memo + capture store).
        """
        alberta = workloads is None
        if alberta:
            workloads = alberta_workloads(benchmark_id, base_seed)
        wl = list(workloads)
        cells = [
            _Cell(
                benchmark_id=benchmark_id,
                workload_name=w.name,
                base_seed=base_seed,
                machine=None,
                workload=None if alberta else w,
            )
            for w in wl
        ]
        with self._collect():
            outcomes = self.engine.capture_run(cells, wl)
        return [oc.profile if oc.ok else None for oc in outcomes]

    def replay(
        self,
        capture: TelemetryCapture,
        request: ReplayRequest | None = None,
        *,
        workload: Workload | None = None,
        build: Any = None,
        machine: Any = _ENGINE_MACHINE,
        sampling: "SamplingPlan | None" = None,
    ) -> ExecutionProfile | None:
        """Replay a capture under a machine config / FDO build.

        The declarative form takes a
        :class:`~repro.core.sweep.ReplayRequest`::

            session.replay(capture, ReplayRequest(machine=cfg, sampling=plan))

        whose ``machine`` defaults to the session's config.  Pass the
        originating ``workload`` to enable profile-level caching of the
        replay result.  ``sampling`` selects phase-sampled replay (a
        :class:`~repro.machine.sampling.SamplingPlan`; ``exact=True``
        plans take the exact path, bit-identical to ``sampling=None``).
        ``None`` only under ``strict=False`` when the replay failed.

        The legacy keyword form (``workload=``/``build=``/``machine=``/
        ``sampling=`` directly on this call) still works but emits a
        :class:`DeprecationWarning`; a bare ``replay(capture)`` stays
        silent — it is already the default request.
        """
        legacy = (
            workload is not None
            or build is not None
            or machine is not _ENGINE_MACHINE
            or sampling is not None
        )
        if request is not None:
            if legacy:
                raise TypeError(
                    "replay: with a ReplayRequest, set workload/build/"
                    "machine/sampling on the request itself"
                )
            workload = request.workload
            build = request.build
            sampling = request.sampling
            machine = (
                _ENGINE_MACHINE if request.machine is ENGINE_MACHINE else request.machine
            )
        elif legacy:
            warnings.warn(
                "replay(capture, workload=..., build=..., machine=..., "
                "sampling=...) keyword form is deprecated; pass a "
                "ReplayRequest — machine configs resolve by registered "
                "preset name via repro.core.registry.machine_preset() "
                "(see repro.core.sweep)",
                DeprecationWarning,
                stacklevel=2,
            )
        with self._collect():
            oc = self.engine.replay_run(
                capture, workload=workload, build=build, machine=machine,
                sampling=sampling,
            )
        return oc.profile if oc.ok else None

    def _resolve(
        self, benchmark_id: str, workload: "Workload | str", base_seed: int
    ) -> Workload:
        if isinstance(workload, str):
            return alberta_workloads(benchmark_id, base_seed)[workload]
        return workload

    def _result(
        self,
        chars: "list[BenchmarkCharacterization]",
        outcomes: list[CellOutcome],
        reg: MetricsRegistry | None = None,
    ) -> RunResult:
        return RunResult(
            characterizations=chars,
            failures=[oc.failure() for oc in outcomes if not oc.ok],
            trace_path=self._writer.path,
            metrics=reg,
        )

    # ---------------------------------------------------------- exports

    def prometheus(self) -> str:
        """The session registry in Prometheus text exposition format."""
        return metrics_mod.render_prometheus(self.metrics)

    def metrics_table(self) -> str:
        """The session registry as the ``repro metrics show`` table."""
        return metrics_mod.render_metrics_table(self.metrics)

    def chrome_trace(self) -> dict[str, Any]:
        """The session's span tree as Chrome ``trace_event`` JSON.

        Built from the writer's in-memory record buffer, so it works
        whether or not a journal path was configured.
        """
        return export_chrome_trace(self._writer.records)

    @property
    def stack_counts(self) -> dict[str, int]:
        """Collapsed-stack sample counts folded across every sampled cell.

        Empty unless profiling was opted into via ``REPRO_STACK_SAMPLE``
        (see :mod:`repro.core.resources`).
        """
        return dict(self.engine.stack_counts)

    def write_flamegraph(self, path: str | Path) -> Path:
        """Write the session's collapsed stacks (flamegraph.pl format)."""
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            render_collapsed(self.engine.stack_counts), encoding="utf-8"
        )
        return path

    # -------------------------------------------------------- lifecycle

    @property
    def summary(self) -> RunSummary | None:
        """The session summary (available once closed)."""
        return self._writer.summary

    def close(self) -> RunSummary:
        """Finalize the journal (idempotent) and return the summary.

        When a ledger is attached, the run's record is appended here —
        once, on the first close.
        """
        record_ledger = self.ledger is not None and not self._closed
        with self._collect():
            summary = self._writer.finish()
        self._writer.close()
        self._closed = True
        if record_ledger:
            self.ledger.append(self._ledger_record(summary))
        return summary

    def _ledger_record(self, summary: RunSummary) -> dict[str, Any]:
        """One schema-1 ledger record for everything this session ran."""
        benchmarks = sorted({s.benchmark for s in self._writer.spans})
        scenarios: dict[str, str] = {}
        for bid in benchmarks:
            desc = REGISTRY.find("benchmark", bid)
            if desc is not None:
                scenarios[bid] = desc.fingerprint()
        for name in sorted(self._grids):
            desc = REGISTRY.find("machine", name)
            if desc is not None:
                scenarios[f"machine:{name}"] = desc.fingerprint()
        machine = self.engine.machine
        return build_record(
            run_id=self._writer.run_id or "unknown",
            started_at=self._writer.started_at or time.time(),
            finished_at=time.time(),
            summary=summary.to_dict(),
            metrics_snapshot=self.metrics.to_dict(),
            benchmarks=benchmarks,
            machine=None if machine is None else payload_digest(asdict(machine)),
            grids=self._grids,
            scenarios=scenarios,
            builds=self.engine.builds_used,
            trace_path=str(self._writer.path) if self._writer.path else None,
        )

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Run:
    """One-shot facade over :class:`Session`.

    Holds the configuration; each call opens a session, runs, closes
    the journal, and returns a :class:`RunResult` with its ``summary``
    populated.
    """

    def __init__(self, **config: object):
        self._config = config

    def characterize(
        self,
        benchmark_id: str,
        workloads: WorkloadSet | None = None,
        *,
        base_seed: int = 0,
        keep_profiles: bool = False,
    ) -> RunResult:
        with Session(**self._config) as session:  # type: ignore[arg-type]
            result = session.characterize(
                benchmark_id, workloads, base_seed=base_seed, keep_profiles=keep_profiles
            )
        result.summary = session.summary
        return result

    def characterize_suite(
        self,
        *,
        suite: str | None = None,
        table2_only: bool = True,
        base_seed: int = 0,
        ids: list[str] | None = None,
    ) -> RunResult:
        with Session(**self._config) as session:  # type: ignore[arg-type]
            result = session.characterize_suite(
                suite=suite, table2_only=table2_only, base_seed=base_seed, ids=ids
            )
        result.summary = session.summary
        return result

    def characterize_sweep(
        self,
        request: "SweepRequest | str",
        machines: "list[MachineConfig | None] | None" = None,
        workloads: WorkloadSet | None = None,
        *,
        base_seed: int = 0,
        keep_profiles: bool = False,
        sampling: "SamplingPlan | None" = None,
        batched: bool | None = None,
    ) -> SweepResult:
        with Session(**self._config) as session:  # type: ignore[arg-type]
            result = session.characterize_sweep(
                request,
                machines,
                workloads,
                base_seed=base_seed,
                keep_profiles=keep_profiles,
                sampling=sampling,
                batched=batched,
            )
        result.summary = session.summary
        return result
