"""Per-benchmark characterization pipeline (Section V of the paper).

Runs a benchmark over a workload set under the machine model and
summarizes the three measurements the paper reports:

* execution time per workload (Section V-A);
* top-down category statistics and ``mu_g(V)`` (Section V-B);
* method coverage and ``mu_g(M)`` (Section V-C).

:func:`characterize` produces one :class:`BenchmarkCharacterization` —
the data behind one row of Table II; :func:`characterize_suite` builds
the whole table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..machine.cost import MachineConfig
from ..machine.profiler import ExecutionProfile
from .coverage import CoverageSummary, summarize_coverage
from .errors import WorkloadError
from .topdown import TopDownSummary, summarize_topdown
from .workload import Workload, WorkloadSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cache import ResultCache

__all__ = [
    "BenchmarkCharacterization",
    "assemble_characterization",
    "characterize",
    "characterize_suite",
]


@dataclass
class BenchmarkCharacterization:
    """Everything Section V measures for one benchmark."""

    benchmark_id: str
    n_workloads: int
    topdown: TopDownSummary
    coverage: CoverageSummary
    seconds_by_workload: dict[str, float]
    refrate_seconds: float | None
    profiles: list[ExecutionProfile] = field(default_factory=list, repr=False)

    @property
    def mu_g_v(self) -> float:
        return self.topdown.mu_g_v

    @property
    def mu_g_m(self) -> float:
        return self.coverage.mu_g_m

    def table2_row(self) -> dict[str, float | int | str | None]:
        """The Table II row: percentages for mu_g, sigma_g raw."""
        td = self.topdown
        row: dict[str, float | int | str] = {
            "benchmark": self.benchmark_id,
            "n_workloads": self.n_workloads,
        }
        for short, cat in (
            ("f", "front_end"),
            ("b", "back_end"),
            ("s", "bad_speculation"),
            ("r", "retiring"),
        ):
            row[f"{short}_mu_g"] = td.mu_g(cat) * 100.0
            row[f"{short}_sigma_g"] = td.sigma_g(cat)
        row["mu_g_v"] = self.mu_g_v
        row["mu_g_m"] = self.mu_g_m
        # None (no .refrate workload in the set) stays None so exports can
        # distinguish "not measured" from a measured 0.0 refrate time.
        row["refrate_seconds"] = self.refrate_seconds
        return row


def assemble_characterization(
    benchmark_id: str,
    workloads: list[Workload],
    profiles: list[ExecutionProfile],
    *,
    keep_profiles: bool = False,
) -> BenchmarkCharacterization:
    """Summarize ordered per-workload profiles into one Table II row.

    This is the single summarization path: the serial loop below and
    the parallel/cached engine both feed their profiles (in workload
    order) through here, which is what makes their results identical.
    """
    if len(workloads) != len(profiles):
        raise WorkloadError(
            f"assemble_characterization: {len(workloads)} workloads but "
            f"{len(profiles)} profiles for {benchmark_id}"
        )
    seconds: dict[str, float] = {}
    refrate_seconds: float | None = None
    for workload, profile in zip(workloads, profiles):
        seconds[workload.name] = profile.seconds
        if workload.name.endswith(".refrate"):
            refrate_seconds = profile.seconds

    topdown = summarize_topdown([p.topdown for p in profiles])
    coverage = summarize_coverage([p.coverage for p in profiles])
    return BenchmarkCharacterization(
        benchmark_id=benchmark_id,
        n_workloads=len(profiles),
        topdown=topdown,
        coverage=coverage,
        seconds_by_workload=seconds,
        refrate_seconds=refrate_seconds,
        profiles=list(profiles) if keep_profiles else [],
    )


def characterize(
    benchmark_id: str,
    workloads: WorkloadSet | None = None,
    *,
    machine: MachineConfig | None = None,
    base_seed: int = 0,
    keep_profiles: bool = False,
    workers: int | None = 1,
    cache: "ResultCache | str | Path | None" = None,
) -> BenchmarkCharacterization:
    """Run one benchmark over its workload set and summarize.

    ``workloads`` defaults to the benchmark's Alberta set.  The refrate
    time is taken from the workload whose name ends in ``.refrate``
    (every default set has one).

    ``workers`` fans the per-workload runs out over a process pool
    (``None`` means ``os.cpu_count()``); ``cache`` reuses profiles from
    a :class:`~repro.core.cache.ResultCache` (or a directory path).
    Every configuration is one execution path — the
    :class:`~repro.core.run.Run` facade over the engine — with
    ``workers=1, cache=None`` as its serial special case (verified
    bit-identical to the historical serial loop in
    ``tests/test_run.py``).  Failures raise
    :class:`~repro.core.errors.CellFailure`; use :class:`Run` directly
    for ``strict=False`` degraded runs, timeouts, and trace journals.
    """
    from .run import Run

    result = Run(workers=workers, cache=cache, machine=machine).characterize(
        benchmark_id, workloads, base_seed=base_seed, keep_profiles=keep_profiles
    )
    return result.characterization


def characterize_suite(
    *,
    suite: str | None = None,
    table2_only: bool = True,
    machine: MachineConfig | None = None,
    base_seed: int = 0,
    workers: int | None = 1,
    cache: "ResultCache | str | Path | None" = None,
) -> list[BenchmarkCharacterization]:
    """Characterize every registered benchmark (the full Table II).

    The whole benchmark × workload matrix is handed to the
    :class:`~repro.core.engine.CharacterizationEngine` as one flat
    batch via the :class:`~repro.core.run.Run` facade — the only
    execution path; ``workers=1, cache=None`` runs it serially, cell
    by cell, in matrix order.
    """
    from .run import Run

    result = Run(workers=workers, cache=cache, machine=machine).characterize_suite(
        suite=suite, table2_only=table2_only, base_seed=base_seed
    )
    return result.characterizations
