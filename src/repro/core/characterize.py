"""Per-benchmark characterization pipeline (Section V of the paper).

Runs a benchmark over a workload set under the machine model and
summarizes the three measurements the paper reports:

* execution time per workload (Section V-A);
* top-down category statistics and ``mu_g(V)`` (Section V-B);
* method coverage and ``mu_g(M)`` (Section V-C).

:func:`characterize` produces one :class:`BenchmarkCharacterization` —
the data behind one row of Table II; :func:`characterize_suite` builds
the whole table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.cost import MachineConfig
from ..machine.profiler import ExecutionProfile, Profiler
from .coverage import CoverageSummary, summarize_coverage
from .suite import alberta_workloads, benchmark_ids, get_benchmark
from .topdown import TopDownSummary, summarize_topdown
from .workload import WorkloadSet

__all__ = ["BenchmarkCharacterization", "characterize", "characterize_suite"]


@dataclass
class BenchmarkCharacterization:
    """Everything Section V measures for one benchmark."""

    benchmark_id: str
    n_workloads: int
    topdown: TopDownSummary
    coverage: CoverageSummary
    seconds_by_workload: dict[str, float]
    refrate_seconds: float | None
    profiles: list[ExecutionProfile] = field(default_factory=list, repr=False)

    @property
    def mu_g_v(self) -> float:
        return self.topdown.mu_g_v

    @property
    def mu_g_m(self) -> float:
        return self.coverage.mu_g_m

    def table2_row(self) -> dict[str, float | int | str]:
        """The Table II row: percentages for mu_g, sigma_g raw."""
        td = self.topdown
        row: dict[str, float | int | str] = {
            "benchmark": self.benchmark_id,
            "n_workloads": self.n_workloads,
        }
        for short, cat in (
            ("f", "front_end"),
            ("b", "back_end"),
            ("s", "bad_speculation"),
            ("r", "retiring"),
        ):
            row[f"{short}_mu_g"] = td.mu_g(cat) * 100.0
            row[f"{short}_sigma_g"] = td.sigma_g(cat)
        row["mu_g_v"] = self.mu_g_v
        row["mu_g_m"] = self.mu_g_m
        row["refrate_seconds"] = self.refrate_seconds if self.refrate_seconds else 0.0
        return row


def characterize(
    benchmark_id: str,
    workloads: WorkloadSet | None = None,
    *,
    machine: MachineConfig | None = None,
    base_seed: int = 0,
    keep_profiles: bool = False,
) -> BenchmarkCharacterization:
    """Run one benchmark over its workload set and summarize.

    ``workloads`` defaults to the benchmark's Alberta set.  The refrate
    time is taken from the workload whose name ends in ``.refrate``
    (every default set has one).
    """
    benchmark = get_benchmark(benchmark_id)
    if workloads is None:
        workloads = alberta_workloads(benchmark_id, base_seed)
    if len(workloads) == 0:
        raise ValueError(f"characterize: empty workload set for {benchmark_id}")

    profiler = Profiler(machine)
    profiles: list[ExecutionProfile] = []
    seconds: dict[str, float] = {}
    refrate_seconds: float | None = None
    for workload in workloads:
        profile = profiler.run(benchmark, workload)
        profiles.append(profile)
        seconds[workload.name] = profile.seconds
        if workload.name.endswith(".refrate"):
            refrate_seconds = profile.seconds

    topdown = summarize_topdown([p.topdown for p in profiles])
    coverage = summarize_coverage([p.coverage for p in profiles])
    return BenchmarkCharacterization(
        benchmark_id=benchmark_id,
        n_workloads=len(profiles),
        topdown=topdown,
        coverage=coverage,
        seconds_by_workload=seconds,
        refrate_seconds=refrate_seconds,
        profiles=profiles if keep_profiles else [],
    )


def characterize_suite(
    *,
    suite: str | None = None,
    table2_only: bool = True,
    machine: MachineConfig | None = None,
    base_seed: int = 0,
) -> list[BenchmarkCharacterization]:
    """Characterize every registered benchmark (the full Table II)."""
    out = []
    for bid in sorted(benchmark_ids(suite, table2_only=table2_only)):
        out.append(characterize(bid, machine=machine, base_seed=base_seed))
    return out
