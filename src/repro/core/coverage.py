"""Method coverage (Section V-C of the paper).

*Method coverage* is the percentage of execution time spent in each
method (function) of a benchmark.  A :class:`CoverageProfile` records
the per-method time fractions for one (benchmark, workload) execution;
:func:`summarize_coverage` computes the per-method summaries and the
single-number ``mu_g(M)`` of Equation 5.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from .stats import (
    COVERAGE_FLOOR,
    OTHERS_THRESHOLD,
    RatioSummary,
    method_variation,
    mu_g_of_variations,
)

__all__ = ["CoverageProfile", "CoverageSummary", "summarize_coverage", "OTHERS_LABEL"]

#: Name of the bucket that aggregates insignificant methods.
OTHERS_LABEL = "others"


@dataclass(frozen=True)
class CoverageProfile:
    """Per-method execution-time fractions for a single run.

    ``fractions`` maps method name -> fraction of total execution time
    in [0, 1].  Fractions must sum to ~1 unless the profile is empty.
    """

    fractions: Mapping[str, float]

    def __post_init__(self) -> None:
        total = 0.0
        for name, frac in self.fractions.items():
            if not math.isfinite(frac) or frac < 0.0:
                raise ValueError(f"coverage for {name!r} must be finite and >= 0, got {frac!r}")
            total += frac
        if self.fractions and not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
            raise ValueError(f"coverage fractions must sum to 1, got {total!r}")

    @classmethod
    def from_times(cls, times: Mapping[str, float]) -> "CoverageProfile":
        """Build a profile from absolute per-method times (e.g. cycles)."""
        total = sum(times.values())
        if total <= 0:
            raise ValueError("from_times: total time must be positive")
        return cls({name: t / total for name, t in times.items()})

    def methods(self) -> list[str]:
        return sorted(self.fractions)

    def fraction(self, method: str) -> float:
        return self.fractions.get(method, 0.0)

    def top(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` hottest methods, hottest first."""
        ranked = sorted(self.fractions.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]


@dataclass(frozen=True)
class CoverageSummary:
    """Cross-workload coverage summary for one benchmark.

    ``per_method`` holds a :class:`RatioSummary` per significant method
    (plus the ``others`` bucket when applicable), computed on the
    paper's percent-plus-floor scale; ``mu_g_m`` is Equation 5's single
    number (geometric mean of per-method ``sigma_g``, see
    :func:`repro.core.stats.method_variation` for why ``sigma_g``);
    ``methods`` lists the significant methods in deterministic order.
    """

    n_workloads: int
    per_method: dict[str, RatioSummary]
    mu_g_m: float
    methods: tuple[str, ...] = field(default_factory=tuple)


def summarize_coverage(
    profiles: Sequence[CoverageProfile],
    *,
    others_threshold: float = OTHERS_THRESHOLD,
    floor: float = COVERAGE_FLOOR,
) -> CoverageSummary:
    """Summarize coverage across workloads into ``mu_g(M)`` (Equation 5).

    Methods whose peak fraction across all workloads is below
    ``others_threshold`` are folded into an ``others`` bucket; values
    are converted to the percentage scale and the ``floor`` constant is
    added before geometric statistics are taken — both per Section V-C.
    """
    if not profiles:
        raise ValueError("summarize_coverage: need at least one profile")

    all_methods: set[str] = set()
    for p in profiles:
        all_methods.update(p.fractions.keys())

    significant: list[str] = []
    grouped: list[str] = []
    for m in sorted(all_methods):
        peak = max(p.fraction(m) for p in profiles)
        if peak < others_threshold:
            grouped.append(m)
        else:
            significant.append(m)

    per_method: dict[str, RatioSummary] = {}
    for m in significant:
        per_method[m] = RatioSummary([p.fraction(m) * 100.0 + floor for p in profiles])
    if grouped:
        per_method[OTHERS_LABEL] = RatioSummary(
            [sum(p.fraction(m) for m in grouped) * 100.0 + floor for p in profiles]
        )

    mu_g_m = mu_g_of_variations(rs.sigma_g for rs in per_method.values())

    # Cross-check against the standalone helper; both implement Eq. 5 and
    # must agree, so any drift is a bug in one of them.
    check = method_variation(
        [p.fractions for p in profiles],
        others_threshold=others_threshold,
        floor=floor,
    )
    assert math.isclose(mu_g_m, check, rel_tol=1e-9), (mu_g_m, check)

    return CoverageSummary(
        n_workloads=len(profiles),
        per_method=per_method,
        mu_g_m=mu_g_m,
        methods=tuple(significant),
    )
