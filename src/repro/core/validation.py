"""Workload-set validation.

SPEC validates every benchmark run's output; the Alberta tooling also
needed to validate the *workloads themselves* (the paper: "our initial
effort failed badly and led the benchmark to failed states").  This
module runs every workload in a set through its benchmark and reports
which ones execute and verify cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.cost import MachineConfig
from ..machine.profiler import Profiler
from .registry import get_benchmark
from .workload import WorkloadSet

__all__ = ["ValidationReport", "validate_workload_set"]


@dataclass
class ValidationReport:
    """Outcome of validating one workload set."""

    benchmark_id: str
    passed: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        lines = [
            f"{self.benchmark_id}: {len(self.passed)} passed, {len(self.failed)} failed"
        ]
        for name, reason in self.failed.items():
            lines.append(f"  FAIL {name}: {reason}")
        return "\n".join(lines)


def validate_workload_set(
    workloads: WorkloadSet,
    *,
    machine: MachineConfig | None = None,
) -> ValidationReport:
    """Execute and verify every workload; collect failures."""
    benchmark = get_benchmark(workloads.benchmark)
    profiler = Profiler(machine)
    report = ValidationReport(benchmark_id=workloads.benchmark)
    for workload in workloads:
        try:
            profiler.run(benchmark, workload)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            report.failed[workload.name] = f"{type(exc).__name__}: {exc}"
        else:
            report.passed.append(workload.name)
    return report
