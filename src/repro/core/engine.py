"""Fault-tolerant, parallel, cached characterization execution engine.

:func:`repro.core.characterize.characterize_suite` is a benchmark ×
workload profiling matrix; every cell — run one benchmark on one
workload under a fixed machine config — is independent and
deterministic.  The engine exploits both properties:

* **Parallelism** — cells fan out over a ``ProcessPoolExecutor``
  (worker count configurable, default ``os.cpu_count()``).  Results
  are collected in submission order, so parallel runs feed
  ``summarize_topdown`` / ``summarize_coverage`` the exact same profile
  sequence as a serial run and the summaries are bit-identical.
* **Caching** — each cell is looked up in a
  :class:`~repro.core.cache.ResultCache` before being scheduled, keyed
  by the cell's full content (see :func:`repro.core.cache.cache_key`),
  so warm re-runs of Table II, the figures, and the studies skip the
  profiling entirely.
* **Fault tolerance** — a cell that raises, exceeds the per-cell
  ``timeout``, or takes its worker process down with it is retried up
  to ``retries`` times with a deterministic exponential backoff; a
  broken or timed-out pool is torn down and the surviving cells are
  resubmitted to a fresh one (bounded by ``max_pool_restarts``).
  Under ``strict=True`` (default) an exhausted cell raises
  :class:`~repro.core.errors.CellFailure`; under ``strict=False`` the
  run completes and failed cells are reported in the result instead.
* **Tracing** — every completed cell emits a
  :class:`~repro.core.trace.CellSpan` through the engine's
  :class:`~repro.core.trace.TraceWriter` (benchmark, workload, cache
  hit/miss, attempts, duration, outcome), mirrored into
  ``engine.run.*`` telemetry counters and optionally journaled as
  JSONL (see ``repro suite --trace`` / ``repro trace``).

Worker processes regenerate default Alberta workload sets from
``(benchmark_id, base_seed)`` instead of receiving pickled payloads
(sets are memoized per process); explicitly-provided workload sets are
shipped to the workers as-is.  Profiles returned from workers and from
the cache carry ``output=None`` — the summaries never read the
benchmark output.

Fault injection (for tests and chaos drills): set
``REPRO_FAULT_INJECT`` to ``;``-separated entries of the form
``mode[(arg)]:benchmark_glob:workload_glob[:max_attempt]`` with modes
``raise`` (worker raises), ``exit`` (worker process dies via
``os._exit(arg or 13)``, breaking the pool), and ``hang`` (worker
sleeps ``arg or 60`` seconds, tripping the timeout).  ``max_attempt``
limits the injection to the first N attempts, so retry-recovery paths
are testable deterministically.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError  # distinct type pre-3.11
from dataclasses import dataclass, replace
from fnmatch import fnmatch
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..machine.cost import MachineConfig
from ..machine.profiler import ExecutionProfile, Profiler
from .cache import ResultCache, cache_key
from .errors import CellFailure, WorkloadError
from .suite import alberta_workloads, benchmark_ids, get_benchmark
from .trace import CellSpan, TraceWriter
from .workload import Workload, WorkloadSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .characterize import BenchmarkCharacterization

__all__ = [
    "CharacterizationEngine",
    "CellOutcome",
    "default_workers",
    "FAULT_INJECT_ENV",
]

#: Environment variable holding the fault-injection spec.
FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"


def default_workers() -> int:
    """The engine's default worker count: every available CPU."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class _Cell:
    """One (benchmark, workload) unit of the profiling matrix.

    ``workload`` is ``None`` for default Alberta workloads — the worker
    regenerates them from ``(benchmark_id, base_seed)`` rather than
    unpickling the payload.  Custom workloads ride along explicitly.
    """

    benchmark_id: str
    workload_name: str
    base_seed: int
    machine: MachineConfig | None
    workload: Workload | None = None


@dataclass(frozen=True)
class CellOutcome:
    """The terminal record of one cell's execution (or cache hit)."""

    cell: _Cell
    profile: ExecutionProfile | None
    cache: str  # "hit" | "miss" | "off"
    attempts: int
    duration_s: float
    outcome: str  # "ok" | "failed" | "timeout" | "crashed"
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def span(self) -> CellSpan:
        return CellSpan(
            benchmark=self.cell.benchmark_id,
            workload=self.cell.workload_name,
            cache=self.cache,
            attempts=self.attempts,
            duration_s=self.duration_s,
            outcome=self.outcome,
            error=self.error,
        )

    def failure(self) -> CellFailure:
        """The unraised :class:`CellFailure` describing this outcome."""
        return CellFailure(
            self.cell.benchmark_id,
            self.cell.workload_name,
            attempts=self.attempts,
            outcome=self.outcome,
            error=self.error or "",
        )


# ----------------------------------------------------------- worker side

# Per-worker-process memoization: regenerating a 30-workload Alberta set
# per cell would swamp the run cost for cheap benchmarks.
_WORKER_SETS: dict[tuple[str, int], WorkloadSet] = {}
_WORKER_BENCHMARKS: dict[str, Any] = {}


def _worker_benchmark(benchmark_id: str) -> Any:
    bench = _WORKER_BENCHMARKS.get(benchmark_id)
    if bench is None:
        bench = _WORKER_BENCHMARKS[benchmark_id] = get_benchmark(benchmark_id)
    return bench


def _worker_workload(cell: _Cell) -> Workload:
    if cell.workload is not None:
        return cell.workload
    key = (cell.benchmark_id, cell.base_seed)
    workloads = _WORKER_SETS.get(key)
    if workloads is None:
        workloads = _WORKER_SETS[key] = alberta_workloads(cell.benchmark_id, cell.base_seed)
    return workloads[cell.workload_name]


class _InjectedFault(RuntimeError):
    """Raised by ``REPRO_FAULT_INJECT`` ``raise`` entries."""


def _parse_fault_spec(spec: str) -> list[tuple[str, float | None, str, str, int]]:
    """``mode[(arg)]:bench_glob:wl_glob[:max_attempt]`` entries."""
    entries = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 3:
            continue
        mode, arg = parts[0], None
        if "(" in mode and mode.endswith(")"):
            mode, raw = mode[:-1].split("(", 1)
            arg = float(raw)
        max_attempt = int(parts[3]) if len(parts) > 3 else 1 << 30
        entries.append((mode, arg, parts[1], parts[2], max_attempt))
    return entries


def _maybe_inject_fault(cell: _Cell, attempt: int) -> None:
    spec = os.environ.get(FAULT_INJECT_ENV)
    if not spec:
        return
    for mode, arg, bench_glob, wl_glob, max_attempt in _parse_fault_spec(spec):
        if attempt > max_attempt:
            continue
        if not fnmatch(cell.benchmark_id, bench_glob):
            continue
        if not fnmatch(cell.workload_name, wl_glob):
            continue
        if mode == "raise":
            raise _InjectedFault(
                f"injected fault: {cell.benchmark_id}/{cell.workload_name} "
                f"attempt {attempt}"
            )
        if mode == "exit":
            os._exit(int(arg) if arg is not None else 13)
        if mode == "hang":
            time.sleep(arg if arg is not None else 60.0)


def _run_cell(cell: _Cell, attempt: int = 1) -> ExecutionProfile:
    """Execute one matrix cell (runs in a worker process or inline).

    The benchmark output is stripped before the profile crosses the
    process boundary: outputs can be large, are never summarized, and
    dropping them keeps worker results byte-compatible with cache hits.
    """
    _maybe_inject_fault(cell, attempt)
    profile = Profiler(cell.machine).run(_worker_benchmark(cell.benchmark_id), _worker_workload(cell))
    return replace(profile, output=None)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Best-effort terminate a pool's worker processes (hung/broken)."""
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - process already gone
            pass


# ----------------------------------------------------------- parent side


class CharacterizationEngine:
    """Runs profiling matrices in parallel with cache, retries, tracing.

    Args:
        workers: process count; ``None`` means ``os.cpu_count()``.
            ``workers=1`` executes inline (no pool, no pickling) unless
            a ``timeout`` is set, which requires a pool to enforce.
        cache: a :class:`ResultCache`, a directory path to open one at,
            or ``None`` to disable caching.
        machine: machine configuration shared by every cell.
        timeout: per-cell wall-clock budget in seconds (pool mode
            only); a cell that exceeds it is retried on a fresh pool.
        retries: extra attempts per failed cell (total = 1 + retries).
        backoff: base of the deterministic exponential backoff; the
            sleep before retry *k* is ``backoff * 2**(k-1)`` seconds.
        strict: when True, an exhausted cell raises
            :class:`CellFailure`; when False, runs complete and report
            failed cells in their results.
        trace: a :class:`TraceWriter`, a journal path, or ``None`` for
            a tally-only writer (telemetry is mirrored either way).
        max_pool_restarts: how many broken/timed-out pools to replace
            before declaring every still-pending cell crashed.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache: ResultCache | str | Path | None = None,
        machine: MachineConfig | None = None,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
        strict: bool = True,
        trace: TraceWriter | str | Path | None = None,
        max_pool_restarts: int = 3,
    ):
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.machine = machine
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout!r}")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.strict = strict
        if not isinstance(trace, TraceWriter):
            trace = TraceWriter(trace)
        self.trace = trace
        self.max_pool_restarts = max(0, int(max_pool_restarts))

    # ------------------------------------------------------------ matrix

    def run_cells(self, cells: list[_Cell], workloads: list[Workload]) -> list[CellOutcome]:
        """Resolve every cell to a :class:`CellOutcome`, in ``cells`` order.

        Never raises for per-cell failures — inspect ``outcome.ok``.
        Cache lookups and stores happen in the parent process only;
        workers never touch the cache directory.  Spans are emitted to
        the trace writer in matrix order once all cells settle.
        """
        if len(cells) != len(workloads):
            raise WorkloadError("run_cells: cells and workloads must align")
        outcomes: list[CellOutcome | None] = [None] * len(cells)
        keys: list[str | None] = [None] * len(cells)
        pending: list[int] = []
        quarantined_before = self.cache.stats.quarantined if self.cache is not None else 0

        for i, (cell, workload) in enumerate(zip(cells, workloads)):
            if self.cache is not None:
                keys[i] = cache_key(cell.benchmark_id, workload, cell.machine)
                cached = self.cache.get(keys[i])
                if cached is not None:
                    outcomes[i] = CellOutcome(cell, cached, "hit", 0, 0.0, "ok")
                    continue
            pending.append(i)

        if pending:
            cache_state = "off" if self.cache is None else "miss"
            self._execute(cells, pending, outcomes, cache_state)
            for i in pending:
                oc = outcomes[i]
                if oc is not None and oc.ok and keys[i] is not None:
                    self.cache.put(keys[i], oc.profile)

        if self.cache is not None:
            self.trace.quarantine(self.cache.stats.quarantined - quarantined_before)
        done = [oc for oc in outcomes if oc is not None]
        for oc in done:
            self.trace.span(oc.span())
        return done

    def _execute(
        self,
        cells: list[_Cell],
        pending: list[int],
        outcomes: list[CellOutcome | None],
        cache_state: str,
    ) -> None:
        """Run the cache-missed cells, inline or pooled."""
        inline = self.timeout is None and (self.workers == 1 or len(pending) == 1)
        if inline:
            self._execute_inline(cells, pending, outcomes, cache_state)
        else:
            self._execute_pool(cells, pending, outcomes, cache_state)

    def _execute_inline(
        self,
        cells: list[_Cell],
        pending: list[int],
        outcomes: list[CellOutcome | None],
        cache_state: str,
    ) -> None:
        for i in pending:
            cell = cells[i]
            attempts = 0
            started = time.perf_counter()
            while True:
                attempts += 1
                try:
                    profile = _run_cell(cell, attempts)
                except Exception as exc:
                    if attempts <= self.retries:
                        self._backoff_sleep(attempts)
                        continue
                    outcomes[i] = CellOutcome(
                        cell, None, cache_state, attempts,
                        time.perf_counter() - started, "failed",
                        f"{type(exc).__name__}: {exc}",
                    )
                else:
                    outcomes[i] = CellOutcome(
                        cell, profile, cache_state, attempts,
                        time.perf_counter() - started, "ok",
                    )
                break

    def _execute_pool(
        self,
        cells: list[_Cell],
        pending: list[int],
        outcomes: list[CellOutcome | None],
        cache_state: str,
    ) -> None:
        """Pool execution with per-cell timeout, retry, and pool recovery.

        Two phases.  **Batch rounds**: every unresolved cell is
        submitted to a (fresh) shared pool and harvested in matrix
        order.  A per-cell failure (worker raised) is charged to that
        cell and retried.  A timeout charges the cell that tripped it
        and *abandons* the round; a broken pool charges nobody —
        when a worker dies every pending future raises
        ``BrokenProcessPool``, so the culprit is not attributable —
        and also abandons.  On abandon, finished futures are still
        harvested, unfinished cells get their attempt refunded, the
        pool's processes are terminated, and a fresh round begins.
        After ``max_pool_restarts`` abandoned rounds, **isolation**:
        each surviving cell runs alone in a single-worker pool, where a
        crash implicates exactly that cell, so innocents always
        complete and only genuinely crashing cells fail.
        """
        remaining: dict[int, int] = {i: 0 for i in pending}  # index -> attempts
        first_seen: dict[int, float] = {}
        restarts = 0
        round_no = 0

        def finalize(i: int, profile: ExecutionProfile | None, outcome: str, error: str | None) -> None:
            outcomes[i] = CellOutcome(
                cells[i], profile, cache_state, max(remaining[i], 1),
                time.perf_counter() - first_seen[i], outcome, error,
            )
            del remaining[i]

        def fail_or_requeue(i: int, outcome: str, error: str) -> None:
            if remaining[i] > self.retries:
                finalize(i, None, outcome, error)

        while remaining and restarts <= self.max_pool_restarts:
            round_no += 1
            order = sorted(remaining)
            now = time.perf_counter()
            for i in order:
                first_seen.setdefault(i, now)
            pool = ProcessPoolExecutor(max_workers=min(self.workers, len(order)))
            futures: dict[int, Future] = {}
            abandon = False
            try:
                for i in order:
                    remaining[i] += 1
                    futures[i] = pool.submit(_run_cell, cells[i], remaining[i])
            except BrokenExecutor:  # pragma: no cover - instant bootstrap death
                for i in order:
                    if i in remaining and i not in futures:
                        remaining[i] -= 1
                abandon = True

            for i in order:
                if i not in remaining or i not in futures:
                    continue
                fut = futures[i]
                if abandon and not fut.done():
                    remaining[i] -= 1  # refund: goes back on the queue
                    continue
                try:
                    profile = fut.result(timeout=None if abandon else self.timeout)
                except (FuturesTimeoutError, TimeoutError) as exc:
                    if fut.done():  # the *worker* raised TimeoutError
                        fail_or_requeue(i, "failed", f"TimeoutError: {exc}")
                        continue
                    abandon = True
                    fail_or_requeue(
                        i, "timeout",
                        f"cell exceeded per-cell timeout of {self.timeout}s",
                    )
                except BrokenExecutor:
                    # Unattributable: the dead worker poisons every
                    # pending future.  Refund and let the next round —
                    # or isolation, once the restart budget runs out —
                    # sort the culprit from the innocents.
                    abandon = True
                    remaining[i] -= 1
                except Exception as exc:
                    fail_or_requeue(i, "failed", f"{type(exc).__name__}: {exc}")
                else:
                    finalize(i, profile, "ok", None)

            if abandon:
                pool.shutdown(wait=False, cancel_futures=True)
                _kill_pool(pool)
                restarts += 1
            else:
                pool.shutdown(wait=True)

            if remaining:
                # Deterministic exponential backoff between retry rounds.
                self._backoff_sleep(round_no)

        if remaining:
            self._execute_isolated(cells, remaining, outcomes, cache_state, first_seen)

    def _execute_isolated(
        self,
        cells: list[_Cell],
        remaining: dict[int, int],
        outcomes: list[CellOutcome | None],
        cache_state: str,
        first_seen: dict[int, float],
    ) -> None:
        """Run each surviving cell alone in a one-worker pool.

        The fallback when shared pools keep breaking: a single-cell
        pool makes crashes exactly attributable, so each cell gets its
        honest retry budget and only genuinely failing cells fail.
        """
        for i in sorted(remaining):
            cell = cells[i]
            first_seen.setdefault(i, time.perf_counter())
            while i in remaining:
                remaining[i] += 1
                attempt = remaining[i]
                pool = ProcessPoolExecutor(max_workers=1)
                abandon = False
                outcome, error = "", ""
                profile: ExecutionProfile | None = None
                try:
                    fut = pool.submit(_run_cell, cell, attempt)
                    profile = fut.result(timeout=self.timeout)
                except (FuturesTimeoutError, TimeoutError) as exc:
                    abandon = True
                    if fut.done():
                        outcome, error = "failed", f"TimeoutError: {exc}"
                    else:
                        outcome, error = (
                            "timeout",
                            f"cell exceeded per-cell timeout of {self.timeout}s",
                        )
                except BrokenExecutor as exc:
                    abandon = True
                    outcome = "crashed"
                    error = f"worker process died: {exc}" if str(exc) else "worker process died"
                except Exception as exc:
                    outcome, error = "failed", f"{type(exc).__name__}: {exc}"
                if abandon:
                    pool.shutdown(wait=False, cancel_futures=True)
                    _kill_pool(pool)
                else:
                    pool.shutdown(wait=True)
                if profile is not None:
                    outcomes[i] = CellOutcome(
                        cell, profile, cache_state, attempt,
                        time.perf_counter() - first_seen[i], "ok",
                    )
                    del remaining[i]
                elif attempt > self.retries:
                    outcomes[i] = CellOutcome(
                        cell, None, cache_state, attempt,
                        time.perf_counter() - first_seen[i], outcome, error,
                    )
                    del remaining[i]
                else:
                    self._backoff_sleep(attempt)

    def _backoff_sleep(self, attempt: int) -> None:
        if self.backoff > 0.0:
            time.sleep(self.backoff * (2 ** (attempt - 1)))

    def run_matrix(
        self, cells: list[_Cell], workloads: list[Workload]
    ) -> list[ExecutionProfile]:
        """Profile every cell, returning results in ``cells`` order.

        Backward-compatible strict surface over :meth:`run_cells`: the
        first failed cell raises its :class:`CellFailure` when
        ``strict`` (failed cells are dropped from the result
        otherwise).
        """
        outcomes = self.run_cells(cells, workloads)
        failed = [oc for oc in outcomes if not oc.ok]
        if failed and self.strict:
            raise failed[0].failure()
        return [oc.profile for oc in outcomes if oc.ok]

    # --------------------------------------------------- characterization

    def characterize_run(
        self,
        benchmark_id: str,
        workloads: WorkloadSet | None = None,
        *,
        base_seed: int = 0,
        keep_profiles: bool = False,
    ) -> "tuple[BenchmarkCharacterization | None, list[CellOutcome]]":
        """Characterize one benchmark, reporting per-cell outcomes.

        Under ``strict=True`` a failed cell raises its
        :class:`CellFailure` (after all spans are journaled).  Under
        ``strict=False`` the characterization is assembled from the
        surviving cells (``None`` if nothing survived) and the failures
        ride along in the outcome list.
        """
        from .characterize import assemble_characterization

        alberta = workloads is None
        if alberta:
            workloads = alberta_workloads(benchmark_id, base_seed)
        if len(workloads) == 0:
            raise WorkloadError(f"characterize: empty workload set for {benchmark_id}")
        wl = list(workloads)
        cells = [
            _Cell(
                benchmark_id=benchmark_id,
                workload_name=w.name,
                base_seed=base_seed,
                machine=self.machine,
                workload=None if alberta else w,
            )
            for w in wl
        ]
        outcomes = self.run_cells(cells, wl)
        failed = [oc for oc in outcomes if not oc.ok]
        if failed and self.strict:
            raise failed[0].failure()
        pairs = [(w, oc.profile) for w, oc in zip(wl, outcomes) if oc.ok]
        char = None
        if pairs:
            char = assemble_characterization(
                benchmark_id,
                [w for w, _ in pairs],
                [p for _, p in pairs],
                keep_profiles=keep_profiles,
            )
        return char, outcomes

    def characterize(
        self,
        benchmark_id: str,
        workloads: WorkloadSet | None = None,
        *,
        base_seed: int = 0,
        keep_profiles: bool = False,
    ) -> "BenchmarkCharacterization":
        """Engine-backed equivalent of :func:`repro.core.characterize.characterize`."""
        char, outcomes = self.characterize_run(
            benchmark_id, workloads, base_seed=base_seed, keep_profiles=keep_profiles
        )
        if char is None:
            # strict=False but literally nothing survived: there is no
            # characterization to degrade to, so surface the first failure.
            raise next(oc for oc in outcomes if not oc.ok).failure()
        return char

    def characterize_suite_run(
        self,
        *,
        suite: str | None = None,
        table2_only: bool = True,
        base_seed: int = 0,
        ids: "list[str] | None" = None,
    ) -> "tuple[list[BenchmarkCharacterization], list[CellOutcome]]":
        """Fan the full benchmark × workload matrix out at once.

        The whole matrix is scheduled as a single flat cell list so the
        pool stays saturated across benchmark boundaries (a per-benchmark
        fan-out would drain to one straggler at each join).
        ``ids`` restricts the run to an explicit benchmark subset
        (overriding ``suite`` / ``table2_only``).

        Returns the characterizations (assembled per benchmark from the
        surviving cells; benchmarks with zero survivors are omitted)
        and every cell outcome.  Under ``strict=True`` the first failed
        cell raises its :class:`CellFailure` after spans are journaled.
        """
        from .characterize import assemble_characterization

        ids = sorted(ids if ids is not None else benchmark_ids(suite, table2_only=table2_only))
        sets = {bid: alberta_workloads(bid, base_seed) for bid in ids}
        cells: list[_Cell] = []
        flat: list[Workload] = []
        for bid in ids:
            for w in sets[bid]:
                cells.append(
                    _Cell(
                        benchmark_id=bid,
                        workload_name=w.name,
                        base_seed=base_seed,
                        machine=self.machine,
                    )
                )
                flat.append(w)
        outcomes = self.run_cells(cells, flat)
        failed = [oc for oc in outcomes if not oc.ok]
        if failed and self.strict:
            raise failed[0].failure()

        out: list[BenchmarkCharacterization] = []
        cursor = 0
        for bid in ids:
            wl = list(sets[bid])
            chunk = outcomes[cursor : cursor + len(wl)]
            cursor += len(wl)
            pairs = [(w, oc.profile) for w, oc in zip(wl, chunk) if oc.ok]
            if pairs:
                out.append(
                    assemble_characterization(
                        bid,
                        [w for w, _ in pairs],
                        [p for _, p in pairs],
                        keep_profiles=False,
                    )
                )
        return out, outcomes

    def characterize_suite(
        self,
        *,
        suite: str | None = None,
        table2_only: bool = True,
        base_seed: int = 0,
        ids: "list[str] | None" = None,
    ) -> "list[BenchmarkCharacterization]":
        """Characterizations only (see :meth:`characterize_suite_run`)."""
        chars, _ = self.characterize_suite_run(
            suite=suite, table2_only=table2_only, base_seed=base_seed, ids=ids
        )
        return chars
