"""Parallel, cached characterization execution engine.

:func:`repro.core.characterize.characterize_suite` is a benchmark ×
workload profiling matrix; every cell — run one benchmark on one
workload under a fixed machine config — is independent and
deterministic.  The engine exploits both properties:

* **Parallelism** — cells fan out over a ``ProcessPoolExecutor``
  (worker count configurable, default ``os.cpu_count()``).  Results
  are collected in submission order, so parallel runs feed
  ``summarize_topdown`` / ``summarize_coverage`` the exact same profile
  sequence as a serial run and the summaries are bit-identical.
* **Caching** — each cell is looked up in a
  :class:`~repro.core.cache.ResultCache` before being scheduled, keyed
  by the cell's full content (see :func:`repro.core.cache.cache_key`),
  so warm re-runs of Table II, the figures, and the studies skip the
  profiling entirely.

Worker processes regenerate default Alberta workload sets from
``(benchmark_id, base_seed)`` instead of receiving pickled payloads
(sets are memoized per process); explicitly-provided workload sets are
shipped to the workers as-is.  Profiles returned from workers and from
the cache carry ``output=None`` — the summaries never read the
benchmark output.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..machine.cost import MachineConfig
from ..machine.profiler import ExecutionProfile, Profiler
from .cache import ResultCache, cache_key
from .suite import alberta_workloads, benchmark_ids, get_benchmark
from .workload import Workload, WorkloadSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .characterize import BenchmarkCharacterization

__all__ = ["CharacterizationEngine", "default_workers"]


def default_workers() -> int:
    """The engine's default worker count: every available CPU."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class _Cell:
    """One (benchmark, workload) unit of the profiling matrix.

    ``workload`` is ``None`` for default Alberta workloads — the worker
    regenerates them from ``(benchmark_id, base_seed)`` rather than
    unpickling the payload.  Custom workloads ride along explicitly.
    """

    benchmark_id: str
    workload_name: str
    base_seed: int
    machine: MachineConfig | None
    workload: Workload | None = None


# Per-worker-process memoization: regenerating a 30-workload Alberta set
# per cell would swamp the run cost for cheap benchmarks.
_WORKER_SETS: dict[tuple[str, int], WorkloadSet] = {}
_WORKER_BENCHMARKS: dict[str, Any] = {}


def _worker_benchmark(benchmark_id: str) -> Any:
    bench = _WORKER_BENCHMARKS.get(benchmark_id)
    if bench is None:
        bench = _WORKER_BENCHMARKS[benchmark_id] = get_benchmark(benchmark_id)
    return bench


def _worker_workload(cell: _Cell) -> Workload:
    if cell.workload is not None:
        return cell.workload
    key = (cell.benchmark_id, cell.base_seed)
    workloads = _WORKER_SETS.get(key)
    if workloads is None:
        workloads = _WORKER_SETS[key] = alberta_workloads(cell.benchmark_id, cell.base_seed)
    return workloads[cell.workload_name]


def _run_cell(cell: _Cell) -> ExecutionProfile:
    """Execute one matrix cell (runs in a worker process or inline).

    The benchmark output is stripped before the profile crosses the
    process boundary: outputs can be large, are never summarized, and
    dropping them keeps worker results byte-compatible with cache hits.
    """
    profile = Profiler(cell.machine).run(_worker_benchmark(cell.benchmark_id), _worker_workload(cell))
    return replace(profile, output=None)


class CharacterizationEngine:
    """Runs profiling matrices in parallel with an optional result cache.

    Args:
        workers: process count; ``None`` means ``os.cpu_count()``.
            ``workers=1`` executes inline (no pool, no pickling).
        cache: a :class:`ResultCache`, a directory path to open one at,
            or ``None`` to disable caching.
        machine: machine configuration shared by every cell.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache: ResultCache | str | Path | None = None,
        machine: MachineConfig | None = None,
    ):
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.machine = machine

    # ------------------------------------------------------------ matrix

    def run_matrix(
        self, cells: list[_Cell], workloads: list[Workload]
    ) -> list[ExecutionProfile]:
        """Profile every cell, returning results in ``cells`` order.

        Cache lookups and stores happen in the parent process only;
        workers never touch the cache directory.
        """
        if len(cells) != len(workloads):
            raise ValueError("run_matrix: cells and workloads must align")
        results: list[ExecutionProfile | None] = [None] * len(cells)
        keys: list[str | None] = [None] * len(cells)
        pending: list[tuple[int, _Cell]] = []

        for i, (cell, workload) in enumerate(zip(cells, workloads)):
            if self.cache is not None:
                keys[i] = cache_key(cell.benchmark_id, workload, cell.machine)
                cached = self.cache.get(keys[i])
                if cached is not None:
                    results[i] = cached
                    continue
            pending.append((i, cell))

        if pending:
            if self.workers == 1 or len(pending) == 1:
                fresh = [_run_cell(cell) for _, cell in pending]
            else:
                n = min(self.workers, len(pending))
                chunk = max(1, len(pending) // (n * 4))
                with ProcessPoolExecutor(max_workers=n) as pool:
                    fresh = list(
                        pool.map(_run_cell, [cell for _, cell in pending], chunksize=chunk)
                    )
            for (i, _), profile in zip(pending, fresh):
                results[i] = profile
                if self.cache is not None and keys[i] is not None:
                    self.cache.put(keys[i], profile)

        return [p for p in results if p is not None]

    # --------------------------------------------------- characterization

    def characterize(
        self,
        benchmark_id: str,
        workloads: WorkloadSet | None = None,
        *,
        base_seed: int = 0,
        keep_profiles: bool = False,
    ) -> "BenchmarkCharacterization":
        """Engine-backed equivalent of :func:`repro.core.characterize.characterize`."""
        from .characterize import assemble_characterization

        alberta = workloads is None
        if alberta:
            workloads = alberta_workloads(benchmark_id, base_seed)
        if len(workloads) == 0:
            raise ValueError(f"characterize: empty workload set for {benchmark_id}")
        wl = list(workloads)
        cells = [
            _Cell(
                benchmark_id=benchmark_id,
                workload_name=w.name,
                base_seed=base_seed,
                machine=self.machine,
                workload=None if alberta else w,
            )
            for w in wl
        ]
        profiles = self.run_matrix(cells, wl)
        return assemble_characterization(benchmark_id, wl, profiles, keep_profiles=keep_profiles)

    def characterize_suite(
        self,
        *,
        suite: str | None = None,
        table2_only: bool = True,
        base_seed: int = 0,
    ) -> "list[BenchmarkCharacterization]":
        """Fan the full benchmark × workload matrix out at once.

        The whole matrix is scheduled as a single flat cell list so the
        pool stays saturated across benchmark boundaries (a per-benchmark
        fan-out would drain to one straggler at each join).
        """
        from .characterize import assemble_characterization

        ids = sorted(benchmark_ids(suite, table2_only=table2_only))
        sets = {bid: alberta_workloads(bid, base_seed) for bid in ids}
        cells: list[_Cell] = []
        flat: list[Workload] = []
        for bid in ids:
            for w in sets[bid]:
                cells.append(
                    _Cell(
                        benchmark_id=bid,
                        workload_name=w.name,
                        base_seed=base_seed,
                        machine=self.machine,
                    )
                )
                flat.append(w)
        profiles = self.run_matrix(cells, flat)

        out: list[BenchmarkCharacterization] = []
        cursor = 0
        for bid in ids:
            wl = list(sets[bid])
            chunk = profiles[cursor : cursor + len(wl)]
            cursor += len(wl)
            out.append(assemble_characterization(bid, wl, chunk, keep_profiles=False))
        return out
