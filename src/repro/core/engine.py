"""Fault-tolerant, parallel, cached characterization execution engine.

:func:`repro.core.characterize.characterize_suite` is a benchmark ×
workload profiling matrix; every cell — run one benchmark on one
workload under a fixed machine config — is independent and
deterministic.  The engine exploits both properties:

* **Parallelism** — cells fan out over a ``ProcessPoolExecutor``
  (worker count configurable, default ``os.cpu_count()``).  Results
  are collected in submission order, so parallel runs feed
  ``summarize_topdown`` / ``summarize_coverage`` the exact same profile
  sequence as a serial run and the summaries are bit-identical.
* **Staged execution** — every cell is resolved through the
  ``generate → capture → replay → summarize`` pipeline.  The *capture*
  stage executes the benchmark and snapshots its telemetry
  (machine-independent; see :mod:`repro.machine.capture`); the
  *replay* stage evaluates a capture under the cell's machine config.
  The stages are separately cached in an
  :class:`~repro.core.artifacts.ArtifactStore`, so a machine-config or
  FDO-build sweep (:meth:`CharacterizationEngine.characterize_sweep_run`)
  executes each benchmark once and replays the stored stream N times.
* **Caching** — each cell is looked up in the profile store before
  being scheduled, keyed by the cell's full content (see
  :func:`repro.core.cache.cache_key`), so warm re-runs of Table II,
  the figures, and the studies skip the profiling entirely; a profile
  miss next consults the capture store (keyed machine-independently by
  :func:`repro.core.cache.capture_key`) to skip at least the
  benchmark execution.
* **Fault tolerance** — a cell that raises, exceeds the per-cell
  ``timeout``, or takes its worker process down with it is retried up
  to ``retries`` times with a deterministic exponential backoff; a
  broken or timed-out pool is torn down and the surviving cells are
  resubmitted to a fresh one (bounded by ``max_pool_restarts``).
  Under ``strict=True`` (default) an exhausted cell raises
  :class:`~repro.core.errors.CellFailure`; under ``strict=False`` the
  run completes and failed cells are reported in the result instead.
* **Tracing** — every completed cell emits a
  :class:`~repro.core.trace.CellSpan` through the engine's
  :class:`~repro.core.trace.TraceWriter` (benchmark, workload, cache
  hit/miss, attempts, duration, outcome), mirrored into
  ``engine.run.*`` telemetry counters and optionally journaled as
  JSONL (see ``repro suite --trace`` / ``repro trace``).

Worker processes regenerate default Alberta workload sets from
``(benchmark_id, base_seed)`` instead of receiving pickled payloads
(sets are memoized per process); explicitly-provided workload sets are
shipped to the workers as-is.  Profiles returned from workers and from
the cache carry ``output=None`` — the summaries never read the
benchmark output.

Fault injection (for tests and chaos drills): set
``REPRO_FAULT_INJECT`` to ``;``-separated entries of the form
``mode[(arg)]:benchmark_glob:workload_glob[:max_attempt]`` with modes
``raise`` (worker raises), ``exit`` (worker process dies via
``os._exit(arg or 13)``, breaking the pool), and ``hang`` (worker
sleeps ``arg or 60`` seconds, tripping the timeout).  ``max_attempt``
limits the injection to the first N attempts, so retry-recovery paths
are testable deterministically.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError  # distinct type pre-3.11
from dataclasses import dataclass, replace
from fnmatch import fnmatch
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..machine.batch import replay_capture_batched
from ..machine.capture import TelemetryCapture, capture_execution, replay_capture
from ..machine.cost import MachineConfig
from ..machine.profiler import ExecutionProfile
from . import metrics
from .artifacts import ArtifactStore
from .cache import ResultCache, cache_key, capture_key
from .errors import CellFailure, WorkloadError
from .registry import (
    CAP_CAPTURE_ONLY,
    CAP_SWEEPABLE,
    REGISTRY,
    alberta_workloads,
    benchmark_ids,
    get_benchmark,
)
from .resources import StageResourceTracker, merge_stacks, sampler_from_env
from .trace import CellSpan, StageSpan, TraceWriter
from .workload import Workload, WorkloadSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..machine.sampling import SamplingPlan
    from .characterize import BenchmarkCharacterization

__all__ = [
    "CharacterizationEngine",
    "CellOutcome",
    "default_workers",
    "FAULT_INJECT_ENV",
]

#: Environment variable holding the fault-injection spec.
FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

#: Sentinel distinguishing "use the engine's machine" from an explicit None.
_ENGINE_MACHINE: Any = object()


def default_workers() -> int:
    """The engine's default worker count: every available CPU."""
    return os.cpu_count() or 1


def _require_capability(benchmark_id: str, capability: str, *, stage: str) -> None:
    """Reject a registered benchmark whose descriptor forbids ``stage``.

    Unregistered benchmarks (ad-hoc substrates built in tests) pass
    through untouched — capability flags only constrain descriptors
    that actually declared them.
    """
    d = REGISTRY.find("benchmark", benchmark_id)
    if d is None:
        return
    if CAP_CAPTURE_ONLY in d.capabilities:
        raise WorkloadError(
            f"{stage}: benchmark {benchmark_id!r} is registered "
            f"{CAP_CAPTURE_ONLY!r} and cannot be replayed or swept"
        )
    if capability not in d.capabilities:
        raise WorkloadError(
            f"{stage}: benchmark {benchmark_id!r} lacks the "
            f"{capability!r} capability"
        )


@dataclass(frozen=True)
class _Cell:
    """One (benchmark, workload) unit of the profiling matrix.

    ``workload`` is ``None`` for default Alberta workloads — the worker
    regenerates them from ``(benchmark_id, base_seed)`` rather than
    unpickling the payload.  Custom workloads ride along explicitly.
    """

    benchmark_id: str
    workload_name: str
    base_seed: int
    machine: MachineConfig | None
    workload: Workload | None = None


@dataclass(frozen=True)
class CellOutcome:
    """The terminal record of one cell's execution (or cache hit).

    ``capture``/``replay`` record the stage-level story: which stage
    actually ran (``"run"``), was served from a store (``"hit"``), or
    never happened (``"-"``).  ``profile`` holds the finished
    :class:`ExecutionProfile` — except for capture-stage-only outcomes
    (:meth:`CharacterizationEngine.capture_run`), where it holds the
    :class:`~repro.machine.capture.TelemetryCapture` instead.
    """

    cell: _Cell
    profile: Any  # ExecutionProfile | TelemetryCapture | None
    cache: str  # "hit" | "miss" | "off" | "-"
    attempts: int
    duration_s: float
    outcome: str  # "ok" | "failed" | "timeout" | "crashed"
    error: str | None = None
    capture: str = "-"  # "hit" | "run" | "-"
    replay: str = "-"  # "hit" | "run" | "-"
    build: str | None = None
    #: Run-timeline start (seconds since the trace writer started); -1
    #: means "unknown" and is backfilled at span-emission time.
    start_s: float = -1.0
    #: ``(stage_name, start offset within the cell, duration)`` triples,
    #: optionally extended with a fourth resource-attribution dict (see
    #: :mod:`repro.core.resources`).
    stages: tuple = ()
    #: ``replay="run"`` took the phase-sampled path rather than exact.
    sampled: bool = False
    #: ``replay="run"`` was served by a one-pass multi-config kernel.
    batched: bool = False

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def span(
        self, *, span_id: str = "", parent_id: str = "", start_s: float = 0.0
    ) -> CellSpan:
        return CellSpan(
            benchmark=self.cell.benchmark_id,
            workload=self.cell.workload_name,
            cache=self.cache,
            attempts=self.attempts,
            duration_s=self.duration_s,
            outcome=self.outcome,
            error=self.error,
            capture=self.capture,
            replay=self.replay,
            build=self.build,
            span_id=span_id,
            parent_id=parent_id,
            start_s=start_s,
            sampled=self.sampled,
            batched=self.batched,
        )

    def failure(self) -> CellFailure:
        """The unraised :class:`CellFailure` describing this outcome."""
        return CellFailure(
            self.cell.benchmark_id,
            self.cell.workload_name,
            attempts=self.attempts,
            outcome=self.outcome,
            error=self.error or "",
        )


# ----------------------------------------------------------- worker side

# Per-worker-process memoization: regenerating a 30-workload Alberta set
# per cell would swamp the run cost for cheap benchmarks.
_WORKER_SETS: dict[tuple[str, int], WorkloadSet] = {}
_WORKER_BENCHMARKS: dict[str, Any] = {}


def _worker_benchmark(benchmark_id: str) -> Any:
    bench = _WORKER_BENCHMARKS.get(benchmark_id)
    if bench is None:
        bench = _WORKER_BENCHMARKS[benchmark_id] = get_benchmark(benchmark_id)
    return bench


def _worker_workload(cell: _Cell) -> Workload:
    if cell.workload is not None:
        return cell.workload
    key = (cell.benchmark_id, cell.base_seed)
    workloads = _WORKER_SETS.get(key)
    if workloads is None:
        workloads = _WORKER_SETS[key] = alberta_workloads(cell.benchmark_id, cell.base_seed)
    return workloads[cell.workload_name]


class _InjectedFault(RuntimeError):
    """Raised by ``REPRO_FAULT_INJECT`` ``raise`` entries."""


def _parse_fault_spec(spec: str) -> list[tuple[str, float | None, str, str, int]]:
    """``mode[(arg)]:bench_glob:wl_glob[:max_attempt]`` entries."""
    entries = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 3:
            continue
        mode, arg = parts[0], None
        if "(" in mode and mode.endswith(")"):
            mode, raw = mode[:-1].split("(", 1)
            arg = float(raw)
        max_attempt = int(parts[3]) if len(parts) > 3 else 1 << 30
        entries.append((mode, arg, parts[1], parts[2], max_attempt))
    return entries


def _maybe_inject_fault(cell: _Cell, attempt: int) -> None:
    spec = os.environ.get(FAULT_INJECT_ENV)
    if not spec:
        return
    for mode, arg, bench_glob, wl_glob, max_attempt in _parse_fault_spec(spec):
        if attempt > max_attempt:
            continue
        if not fnmatch(cell.benchmark_id, bench_glob):
            continue
        if not fnmatch(cell.workload_name, wl_glob):
            continue
        if mode == "raise":
            raise _InjectedFault(
                f"injected fault: {cell.benchmark_id}/{cell.workload_name} "
                f"attempt {attempt}"
            )
        if mode == "exit":
            os._exit(int(arg) if arg is not None else 13)
        if mode == "hang":
            time.sleep(arg if arg is not None else 60.0)


def _run_cell(
    cell: _Cell, attempt: int = 1, mode: str = "replay"
) -> tuple[ExecutionProfile | None, TelemetryCapture | None, dict[str, Any]]:
    """Execute one matrix cell (runs in a worker process or inline).

    Always runs the capture stage; ``mode`` picks what crosses the
    process boundary back to the parent:

    * ``"replay"`` — replay in the worker, return only the profile
      (store-less runs: no reason to ship the telemetry columns);
    * ``"both"`` — replay in the worker *and* return the capture so
      the parent can persist it for later sweeps;
    * ``"capture"`` — skip replay, return only the capture
      (stage-level capture runs).

    The third element is the cell's observability meta: ``"stages"`` is
    ``(name, start offset, duration, resources)`` entries for the
    generate/capture/replay stages — ``resources`` carries the stage's
    ``getrusage`` deltas (and sample counts / replay event totals where
    they apply, see :mod:`repro.core.resources`) — and ``"metrics"`` is
    the worker's
    :class:`~repro.core.metrics.MetricsRegistry` snapshot — the events
    emitted, replay throughput, and per-worker tallies recorded while
    the cell ran, serialized JSON-safe so they survive the pool
    boundary and merge exactly into the parent's registries.

    The benchmark output never crosses the boundary: captures and
    replayed profiles carry ``output=None`` by construction, keeping
    worker results byte-compatible with cache hits.
    """
    _maybe_inject_fault(cell, attempt)
    reg = metrics.MetricsRegistry()
    stages: list[list[Any]] = []
    tracker = StageResourceTracker()
    sampler = sampler_from_env()
    if sampler is not None:
        sampler.start()
    t0 = time.perf_counter()
    try:
        with metrics.collector(reg):
            metrics.inc(metrics.WORKER_CELLS_TOTAL, worker=str(os.getpid()))
            workload = _worker_workload(cell)
            t1 = time.perf_counter()
            stages.append(["generate", 0.0, t1 - t0, tracker.lap()])
            capture = capture_execution(_worker_benchmark(cell.benchmark_id), workload)
            t2 = time.perf_counter()
            stages.append(["capture", t1 - t0, t2 - t1, tracker.lap()])
            if mode == "capture":
                profile = None
            else:
                profile = replay_capture(capture, machine=cell.machine)
                t3 = time.perf_counter()
                res = tracker.lap()
                res["replay_events"] = int(
                    reg.value(metrics.REPLAY_EVENTS_TOTAL, benchmark=cell.benchmark_id)
                    or 0
                )
                res["replay_ns"] = int(
                    reg.value(metrics.REPLAY_NS_TOTAL, benchmark=cell.benchmark_id)
                    or 0
                )
                stages.append(["replay", t2 - t0, t3 - t2, res])
    finally:
        if sampler is not None:
            sampler.stop()
    meta = {"stages": stages, "metrics": reg.to_dict()}
    if sampler is not None:
        for st in stages:
            n = sampler.samples_between(t0 + st[1], t0 + st[1] + st[2])
            if n:
                st[3]["samples"] = n
        meta["stacks"] = sampler.stacks
    if mode == "capture":
        return None, capture, meta
    return profile, (capture if mode == "both" else None), meta


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Best-effort terminate a pool's worker processes (hung/broken)."""
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - process already gone
            pass


# ----------------------------------------------------------- parent side


class CharacterizationEngine:
    """Runs profiling matrices in parallel with cache, retries, tracing.

    Args:
        workers: process count; ``None`` means ``os.cpu_count()``.
            ``workers=1`` executes inline (no pool, no pickling) unless
            a ``timeout`` is set, which requires a pool to enforce.
        cache: an :class:`~repro.core.artifacts.ArtifactStore`, a
            :class:`ResultCache`, a directory path to open one at, or
            ``None`` to disable caching.  A bare ``ResultCache`` (or
            path) is wrapped in an ``ArtifactStore`` so the capture
            stage is cached too; the wrapped cache object is exposed
            unchanged as :attr:`cache`.
        machine: machine configuration shared by every cell.
        timeout: per-cell wall-clock budget in seconds (pool mode
            only); a cell that exceeds it is retried on a fresh pool.
        retries: extra attempts per failed cell (total = 1 + retries).
        backoff: base of the deterministic exponential backoff; the
            sleep before retry *k* is ``backoff * 2**(k-1)`` seconds.
        strict: when True, an exhausted cell raises
            :class:`CellFailure`; when False, runs complete and report
            failed cells in their results.
        trace: a :class:`TraceWriter`, a journal path, or ``None`` for
            a tally-only writer (telemetry is mirrored either way).
        max_pool_restarts: how many broken/timed-out pools to replace
            before declaring every still-pending cell crashed.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache: ArtifactStore | ResultCache | str | Path | None = None,
        machine: MachineConfig | None = None,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
        strict: bool = True,
        trace: TraceWriter | str | Path | None = None,
        max_pool_restarts: int = 3,
    ):
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if cache is None:
            self.store: ArtifactStore | None = None
        elif isinstance(cache, ArtifactStore):
            self.store = cache
        else:
            if not isinstance(cache, ResultCache):
                cache = ResultCache(cache)
            self.store = ArtifactStore(profiles=cache)
        # Back-compat: the profile store under its historical name, the
        # exact object the caller handed in (their .stats keep working).
        self.cache = self.store.profiles if self.store is not None else None
        #: In-process capture reuse for the stage-level APIs (capture_run,
        #: characterize_sweep_run); run_cells stays memo-free so suite
        #: runs don't pin every telemetry stream in memory.
        self._capture_memo: dict[str, TelemetryCapture] = {}
        #: FDO build digests replayed through this engine (name → digest);
        #: the run ledger records them so a build sweep is diffable.
        self.builds_used: dict[str, str] = {}
        #: Collapsed-stack sample counts folded across every sampled cell
        #: (opt-in via ``REPRO_STACK_SAMPLE``), feeding ``repro flame``.
        self.stack_counts: dict[str, int] = {}
        self.machine = machine
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout!r}")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.strict = strict
        if not isinstance(trace, TraceWriter):
            trace = TraceWriter(trace)
        self.trace = trace
        self.max_pool_restarts = max(0, int(max_pool_restarts))

    # ------------------------------------------------------------ matrix

    def run_cells(self, cells: list[_Cell], workloads: list[Workload]) -> list[CellOutcome]:
        """Resolve every cell to a :class:`CellOutcome`, in ``cells`` order.

        The staged pipeline: a profile-cache miss next consults the
        capture store — a stored telemetry stream is replayed in the
        parent (``capture="hit"``, no benchmark execution) — and only
        cells missing both artifacts execute the benchmark.  Executed
        cells capture *and* replay in the worker (one process
        round-trip, replay stays parallel) and ship the capture back
        for persistence when a store is attached.

        Never raises for per-cell failures — inspect ``outcome.ok``.
        Cache lookups and stores happen in the parent process only;
        workers never touch the cache directory.  Spans are emitted to
        the trace writer in matrix order once all cells settle.
        """
        if len(cells) != len(workloads):
            raise WorkloadError("run_cells: cells and workloads must align")
        outcomes: list[CellOutcome | None] = [None] * len(cells)
        keys: list[str | None] = [None] * len(cells)
        to_run: list[int] = []
        replays: list[tuple[int, TelemetryCapture]] = []
        quarantined_before = self._quarantined_total()
        cache_state = "off" if self.store is None else "miss"

        for i, (cell, workload) in enumerate(zip(cells, workloads)):
            if self.store is not None:
                looked_up = self.trace.now()
                keys[i] = cache_key(cell.benchmark_id, workload, cell.machine)
                cached = self.cache.get(keys[i])
                if cached is not None:
                    outcomes[i] = CellOutcome(
                        cell, cached, "hit", 0, 0.0, "ok", replay="hit",
                        start_s=looked_up,
                    )
                    continue
                capture = self.store.captures.get(
                    capture_key(cell.benchmark_id, workload)
                )
                if capture is not None:
                    replays.append((i, capture))
                    continue
            to_run.append(i)

        if to_run:
            mode = "both" if self.store is not None else "replay"
            self._execute(cells, to_run, outcomes, cache_state, mode)
            for i in to_run:
                oc = outcomes[i]
                if oc is None:
                    continue
                if not oc.ok:
                    outcomes[i] = replace(oc, capture="run")
                    continue
                profile, capture, meta = oc.profile
                if meta.get("stacks"):
                    merge_stacks(self.stack_counts, meta["stacks"])
                outcomes[i] = replace(
                    oc, profile=profile, capture="run", replay="run",
                    stages=tuple(tuple(s) for s in meta["stages"]),
                )
                if keys[i] is not None:
                    if capture is not None:
                        self.store.captures.put(
                            capture_key(cells[i].benchmark_id, workloads[i]),
                            capture,
                        )
                    self.cache.put(keys[i], profile)

        for i, capture in replays:
            cell = cells[i]
            tracker = StageResourceTracker()
            reg = metrics.MetricsRegistry()
            started = time.perf_counter()
            try:
                with metrics.collector(reg):
                    profile = replay_capture(capture, machine=cell.machine)
            except Exception as exc:
                outcomes[i] = CellOutcome(
                    cell, None, cache_state, 1,
                    time.perf_counter() - started, "failed",
                    f"{type(exc).__name__}: {exc}",
                    capture="hit", replay="run",
                    start_s=self.trace.rel(started),
                )
                continue
            duration = time.perf_counter() - started
            res = tracker.lap()
            res["replay_events"] = int(
                reg.value(metrics.REPLAY_EVENTS_TOTAL, benchmark=cell.benchmark_id)
                or 0
            )
            res["replay_ns"] = int(
                reg.value(metrics.REPLAY_NS_TOTAL, benchmark=cell.benchmark_id) or 0
            )
            outcomes[i] = CellOutcome(
                cell, profile, cache_state, 0, duration, "ok",
                capture="hit", replay="run",
                start_s=self.trace.rel(started),
                stages=(("replay", 0.0, duration, res),),
            )
            self.cache.put(keys[i], profile)

        self.trace.quarantine(self._quarantined_total() - quarantined_before)
        done = [oc for oc in outcomes if oc is not None]
        self._emit_spans(done)
        return done

    def _quarantined_total(self) -> int:
        """Quarantined entries across both stage stores (0 when off)."""
        if self.store is None:
            return 0
        return self.cache.stats.quarantined + self.store.captures.stats.quarantined

    # ----------------------------------------------------- span emission

    def _emit_spans(self, outcomes: "list[CellOutcome]") -> None:
        """Journal cell spans + their stage children; record cell metrics.

        Each cell gets a fresh span id parented to the run root, and
        its worker-observed stage triples become child ``stage``
        records placed on the run timeline (cell start + in-cell
        offset).  Stage latency histograms are observed here — the one
        place both pooled and inline results funnel through — so stage
        timings are counted exactly once per cell.
        """
        for oc in outcomes:
            start = oc.start_s
            if start < 0:
                start = max(0.0, self.trace.now() - oc.duration_s)
            span_id = self.trace.next_span_id()
            self.trace.span(
                oc.span(
                    span_id=span_id,
                    parent_id=self.trace.run_span_id,
                    start_s=start,
                )
            )
            bench = oc.cell.benchmark_id
            for st in oc.stages:
                name, offset, duration = st[0], st[1], st[2]
                self._emit_stage(
                    name, bench, oc.cell.workload_name,
                    start + offset, duration, parent_id=span_id,
                    resources=st[3] if len(st) > 3 else None,
                )
            metrics.inc(
                metrics.CELLS_TOTAL, benchmark=bench,
                outcome=oc.outcome, cache=oc.cache,
            )
            metrics.observe(
                metrics.CELL_SECONDS, oc.duration_s,
                benchmark=bench, outcome=oc.outcome,
            )
            retries = max(0, oc.attempts - 1)
            if retries:
                metrics.inc(metrics.RETRIES_TOTAL, retries, benchmark=bench)

    def _emit_stage(
        self,
        name: str,
        benchmark: str,
        workload: str,
        start_s: float,
        duration_s: float,
        *,
        parent_id: str | None = None,
        resources: "dict[str, Any] | None" = None,
    ) -> None:
        """Journal one stage span; observe latency + resource metrics."""
        self.trace.stage(
            StageSpan(
                name=name,
                benchmark=benchmark,
                workload=workload,
                start_s=max(0.0, start_s),
                duration_s=duration_s,
                span_id=self.trace.next_span_id(),
                parent_id=self.trace.run_span_id if parent_id is None else parent_id,
                resources=resources,
            )
        )
        metrics.observe(
            metrics.STAGE_SECONDS, duration_s, benchmark=benchmark, stage=name
        )
        if resources:
            metrics.observe(
                metrics.STAGE_CPU_SECONDS, resources.get("cpu_user_s", 0.0),
                benchmark=benchmark, stage=name, cpu="user",
            )
            metrics.observe(
                metrics.STAGE_CPU_SECONDS, resources.get("cpu_sys_s", 0.0),
                benchmark=benchmark, stage=name, cpu="sys",
            )
            rss = resources.get("max_rss_kb")
            if rss:
                metrics.gauge_set(metrics.PEAK_RSS_KB, rss, benchmark=benchmark)
            samples = resources.get("samples")
            if samples:
                metrics.inc(
                    metrics.STACK_SAMPLES_TOTAL, samples,
                    benchmark=benchmark, stage=name,
                )

    def _execute(
        self,
        cells: list[_Cell],
        pending: list[int],
        outcomes: list[CellOutcome | None],
        cache_state: str,
        mode: str = "replay",
    ) -> None:
        """Run the cache-missed cells, inline or pooled.

        ``mode`` is forwarded to :func:`_run_cell`; successful outcomes
        carry the raw worker ``(profile, capture)`` tuple in their
        ``profile`` slot — callers unpack and re-tag with the stage
        states they observed.
        """
        inline = self.timeout is None and (self.workers == 1 or len(pending) == 1)
        if inline:
            self._execute_inline(cells, pending, outcomes, cache_state, mode)
        else:
            self._execute_pool(cells, pending, outcomes, cache_state, mode)

    def _execute_inline(
        self,
        cells: list[_Cell],
        pending: list[int],
        outcomes: list[CellOutcome | None],
        cache_state: str,
        mode: str,
    ) -> None:
        for i in pending:
            cell = cells[i]
            attempts = 0
            started = time.perf_counter()
            while True:
                attempts += 1
                try:
                    result = _run_cell(cell, attempts, mode)
                except Exception as exc:
                    if attempts <= self.retries:
                        self._backoff_sleep(attempts)
                        continue
                    outcomes[i] = CellOutcome(
                        cell, None, cache_state, attempts,
                        time.perf_counter() - started, "failed",
                        f"{type(exc).__name__}: {exc}",
                        start_s=self.trace.rel(started),
                    )
                else:
                    # Inline cells recorded through this process's own
                    # collector stack already; no snapshot merge needed.
                    outcomes[i] = CellOutcome(
                        cell, result, cache_state, attempts,
                        time.perf_counter() - started, "ok",
                        start_s=self.trace.rel(started),
                    )
                break

    def _execute_pool(
        self,
        cells: list[_Cell],
        pending: list[int],
        outcomes: list[CellOutcome | None],
        cache_state: str,
        mode: str,
    ) -> None:
        """Pool execution with per-cell timeout, retry, and pool recovery.

        Two phases.  **Batch rounds**: every unresolved cell is
        submitted to a (fresh) shared pool and harvested in matrix
        order.  A per-cell failure (worker raised) is charged to that
        cell and retried.  A timeout charges the cell that tripped it
        and *abandons* the round; a broken pool charges nobody —
        when a worker dies every pending future raises
        ``BrokenProcessPool``, so the culprit is not attributable —
        and also abandons.  On abandon, finished futures are still
        harvested, unfinished cells get their attempt refunded, the
        pool's processes are terminated, and a fresh round begins.
        After ``max_pool_restarts`` abandoned rounds, **isolation**:
        each surviving cell runs alone in a single-worker pool, where a
        crash implicates exactly that cell, so innocents always
        complete and only genuinely crashing cells fail.
        """
        remaining: dict[int, int] = {i: 0 for i in pending}  # index -> attempts
        first_seen: dict[int, float] = {}
        restarts = 0
        round_no = 0

        def finalize(i: int, result: Any, outcome: str, error: str | None) -> None:
            if result is not None:
                # Pooled cell: its observations lived in the worker
                # process — merge the shipped snapshot here.
                metrics.merge_snapshot(result[2]["metrics"])
            outcomes[i] = CellOutcome(
                cells[i], result, cache_state, max(remaining[i], 1),
                time.perf_counter() - first_seen[i], outcome, error,
                start_s=self.trace.rel(first_seen[i]),
            )
            del remaining[i]

        def fail_or_requeue(i: int, outcome: str, error: str) -> None:
            if remaining[i] > self.retries:
                finalize(i, None, outcome, error)

        while remaining and restarts <= self.max_pool_restarts:
            round_no += 1
            order = sorted(remaining)
            now = time.perf_counter()
            for i in order:
                first_seen.setdefault(i, now)
            pool = ProcessPoolExecutor(max_workers=min(self.workers, len(order)))
            futures: dict[int, Future] = {}
            abandon = False
            try:
                for i in order:
                    remaining[i] += 1
                    futures[i] = pool.submit(_run_cell, cells[i], remaining[i], mode)
            except BrokenExecutor:  # pragma: no cover - instant bootstrap death
                for i in order:
                    if i in remaining and i not in futures:
                        remaining[i] -= 1
                abandon = True

            for i in order:
                if i not in remaining or i not in futures:
                    continue
                fut = futures[i]
                if abandon and not fut.done():
                    remaining[i] -= 1  # refund: goes back on the queue
                    continue
                try:
                    result = fut.result(timeout=None if abandon else self.timeout)
                except (FuturesTimeoutError, TimeoutError) as exc:
                    if fut.done():  # the *worker* raised TimeoutError
                        fail_or_requeue(i, "failed", f"TimeoutError: {exc}")
                        continue
                    abandon = True
                    fail_or_requeue(
                        i, "timeout",
                        f"cell exceeded per-cell timeout of {self.timeout}s",
                    )
                except BrokenExecutor:
                    # Unattributable: the dead worker poisons every
                    # pending future.  Refund and let the next round —
                    # or isolation, once the restart budget runs out —
                    # sort the culprit from the innocents.
                    abandon = True
                    remaining[i] -= 1
                except Exception as exc:
                    fail_or_requeue(i, "failed", f"{type(exc).__name__}: {exc}")
                else:
                    finalize(i, result, "ok", None)

            if abandon:
                pool.shutdown(wait=False, cancel_futures=True)
                _kill_pool(pool)
                restarts += 1
            else:
                pool.shutdown(wait=True)

            if remaining:
                # Deterministic exponential backoff between retry rounds.
                self._backoff_sleep(round_no)

        if remaining:
            self._execute_isolated(cells, remaining, outcomes, cache_state, first_seen, mode)

    def _execute_isolated(
        self,
        cells: list[_Cell],
        remaining: dict[int, int],
        outcomes: list[CellOutcome | None],
        cache_state: str,
        first_seen: dict[int, float],
        mode: str,
    ) -> None:
        """Run each surviving cell alone in a one-worker pool.

        The fallback when shared pools keep breaking: a single-cell
        pool makes crashes exactly attributable, so each cell gets its
        honest retry budget and only genuinely failing cells fail.
        """
        for i in sorted(remaining):
            cell = cells[i]
            first_seen.setdefault(i, time.perf_counter())
            while i in remaining:
                remaining[i] += 1
                attempt = remaining[i]
                pool = ProcessPoolExecutor(max_workers=1)
                abandon = False
                outcome, error = "", ""
                result: Any = None
                try:
                    fut = pool.submit(_run_cell, cell, attempt, mode)
                    result = fut.result(timeout=self.timeout)
                except (FuturesTimeoutError, TimeoutError) as exc:
                    abandon = True
                    if fut.done():
                        outcome, error = "failed", f"TimeoutError: {exc}"
                    else:
                        outcome, error = (
                            "timeout",
                            f"cell exceeded per-cell timeout of {self.timeout}s",
                        )
                except BrokenExecutor as exc:
                    abandon = True
                    outcome = "crashed"
                    error = f"worker process died: {exc}" if str(exc) else "worker process died"
                except Exception as exc:
                    outcome, error = "failed", f"{type(exc).__name__}: {exc}"
                if abandon:
                    pool.shutdown(wait=False, cancel_futures=True)
                    _kill_pool(pool)
                else:
                    pool.shutdown(wait=True)
                if result is not None:
                    metrics.merge_snapshot(result[2]["metrics"])
                    outcomes[i] = CellOutcome(
                        cell, result, cache_state, attempt,
                        time.perf_counter() - first_seen[i], "ok",
                        start_s=self.trace.rel(first_seen[i]),
                    )
                    del remaining[i]
                elif attempt > self.retries:
                    outcomes[i] = CellOutcome(
                        cell, None, cache_state, attempt,
                        time.perf_counter() - first_seen[i], outcome, error,
                        start_s=self.trace.rel(first_seen[i]),
                    )
                    del remaining[i]
                else:
                    self._backoff_sleep(attempt)

    def _backoff_sleep(self, attempt: int) -> None:
        if self.backoff > 0.0:
            time.sleep(self.backoff * (2 ** (attempt - 1)))

    def run_matrix(
        self, cells: list[_Cell], workloads: list[Workload]
    ) -> list[ExecutionProfile]:
        """Profile every cell, returning results in ``cells`` order.

        Backward-compatible strict surface over :meth:`run_cells`: the
        first failed cell raises its :class:`CellFailure` when
        ``strict`` (failed cells are dropped from the result
        otherwise).
        """
        outcomes = self.run_cells(cells, workloads)
        failed = [oc for oc in outcomes if not oc.ok]
        if failed and self.strict:
            raise failed[0].failure()
        return [oc.profile for oc in outcomes if oc.ok]

    # --------------------------------------------------- stage-level APIs

    def _capture_batch(
        self, cells: list[_Cell], workloads: list[Workload]
    ) -> list[tuple[TelemetryCapture | None, str, CellOutcome | None]]:
        """Resolve the capture stage for every cell: memo → store → run.

        Returns one ``(capture, state, run_outcome)`` triple per cell:
        ``state`` is ``"hit"`` (in-process memo or capture store) or
        ``"run"`` (the benchmark executed — successfully or not);
        ``run_outcome`` carries attempts/duration/error for ``"run"``
        entries and is ``None`` for hits.  Emits no spans — callers
        decide how capture cost is attributed (a sweep charges it to
        the first consuming cell).
        """
        results: list[Any] = [None] * len(cells)
        cap_keys = [
            capture_key(cell.benchmark_id, w) for cell, w in zip(cells, workloads)
        ]
        to_run: list[int] = []
        for i, key in enumerate(cap_keys):
            capture = self._capture_memo.get(key)
            if capture is None and self.store is not None:
                capture = self.store.captures.get(key)
                if capture is not None:
                    self._capture_memo[key] = capture
            if capture is not None:
                results[i] = (capture, "hit", None)
            else:
                to_run.append(i)
        if to_run:
            scratch: list[CellOutcome | None] = [None] * len(cells)
            self._execute(cells, to_run, scratch, "-", "capture")
            for i in to_run:
                oc = scratch[i]
                if oc is None:  # pragma: no cover - _execute always fills
                    continue
                if oc.ok:
                    _, capture, meta = oc.profile
                    if meta.get("stacks"):
                        merge_stacks(self.stack_counts, meta["stacks"])
                    results[i] = (
                        capture,
                        "run",
                        replace(
                            oc,
                            profile=None,
                            stages=tuple(tuple(s) for s in meta["stages"]),
                        ),
                    )
                    self._capture_memo[cap_keys[i]] = capture
                    if self.store is not None:
                        self.store.captures.put(cap_keys[i], capture)
                else:
                    results[i] = (None, "run", oc)
        return results

    def capture_run(
        self, cells: list[_Cell], workloads: list[Workload]
    ) -> list[CellOutcome]:
        """Run only the capture stage; spans carry ``replay="-"``.

        Successful outcomes hold the
        :class:`~repro.machine.capture.TelemetryCapture` in their
        ``profile`` slot.  Captures are memoized in-process and
        persisted to the capture store when one is attached, so
        repeated stage-level consumers (the studies) never re-execute
        a benchmark.  Under ``strict=True`` the first failed cell
        raises its :class:`CellFailure` after all spans are journaled.
        """
        if len(cells) != len(workloads):
            raise WorkloadError("capture_run: cells and workloads must align")
        quarantined_before = self._quarantined_total()
        batch = self._capture_batch(cells, workloads)
        outcomes: list[CellOutcome] = []
        for cell, (capture, state, run_oc) in zip(cells, batch):
            if capture is not None:
                outcomes.append(
                    CellOutcome(
                        cell, capture, "-",
                        run_oc.attempts if run_oc is not None else 0,
                        run_oc.duration_s if run_oc is not None else 0.0,
                        "ok", capture=state,
                        start_s=run_oc.start_s if run_oc is not None else -1.0,
                        stages=run_oc.stages if run_oc is not None else (),
                    )
                )
            else:
                outcomes.append(replace(run_oc, capture="run"))
        self.trace.quarantine(self._quarantined_total() - quarantined_before)
        self._emit_spans(outcomes)
        failed = [oc for oc in outcomes if not oc.ok]
        if failed and self.strict:
            raise failed[0].failure()
        return outcomes

    def replay_run(
        self,
        capture: TelemetryCapture,
        *,
        workload: Workload | None = None,
        build: Any = None,
        machine: Any = _ENGINE_MACHINE,
        sampling: "SamplingPlan | None" = None,
    ) -> CellOutcome:
        """Replay one captured stream under a machine config and build.

        ``machine`` defaults to the engine's config; pass an explicit
        config (or ``None`` for the default machine) to override.
        ``build`` is any object exposing ``name``, ``digest()`` and
        ``cost_model(machine)`` — see
        :class:`repro.fdo.optimizer.FdoBuild` — and changes the replay
        without touching the capture.  ``sampling`` selects
        phase-sampled replay (:mod:`repro.machine.sampling`); the
        plan's :meth:`~repro.machine.sampling.SamplingPlan.cache_token`
        joins the cache key, so sampled and exact profiles never
        collide (an ``exact=True`` plan tokenizes to ``None`` and
        shares the exact entry).  When the originating ``workload`` is
        provided and a store is attached, the finished profile is
        cached under the machine+build(+sampling) key (the full
        workload content cannot be reconstructed from a capture, so
        profile-level caching requires it).  Under ``strict=True`` a
        failed replay raises its :class:`CellFailure` after the span
        is journaled.
        """
        m = self.machine if machine is _ENGINE_MACHINE else machine
        build_name = getattr(build, "name", None)
        build_digest = build.digest() if build is not None else None
        if build_name is not None and build_digest is not None:
            self.builds_used[str(build_name)] = str(build_digest)
        token = sampling.cache_token() if sampling is not None else None
        cell = _Cell(capture.benchmark, capture.workload, 0, m)
        key = None
        if self.store is not None and workload is not None:
            key = cache_key(
                capture.benchmark, workload, m,
                build=build_digest,
                sampling=token,
            )
            cached = self.cache.get(key)
            if cached is not None:
                oc = CellOutcome(
                    cell, cached, "hit", 0, 0.0, "ok",
                    replay="hit", build=build_name,
                    start_s=self.trace.now(),
                )
                self._emit_spans([oc])
                return oc
        cache_state = "off" if self.store is None else ("miss" if key else "-")
        stage_name = "sample" if token is not None else "replay"
        tracker = StageResourceTracker()
        reg = metrics.MetricsRegistry()
        started = time.perf_counter()
        try:
            with metrics.collector(reg):
                profile = replay_capture(
                    capture,
                    machine=m,
                    cost_model=build.cost_model(m) if build is not None else None,
                    sampling=sampling,
                )
        except Exception as exc:
            oc = CellOutcome(
                cell, None, cache_state, 1,
                time.perf_counter() - started, "failed",
                f"{type(exc).__name__}: {exc}",
                replay="run", build=build_name,
                start_s=self.trace.rel(started),
                sampled=token is not None,
            )
        else:
            duration = time.perf_counter() - started
            res = tracker.lap()
            res["replay_events"] = int(
                reg.value(metrics.REPLAY_EVENTS_TOTAL, benchmark=capture.benchmark)
                or 0
            )
            res["replay_ns"] = int(
                reg.value(metrics.REPLAY_NS_TOTAL, benchmark=capture.benchmark) or 0
            )
            oc = CellOutcome(
                cell, profile, cache_state, 1, duration, "ok",
                replay="run", build=build_name,
                start_s=self.trace.rel(started),
                stages=((stage_name, 0.0, duration, res),),
                sampled=token is not None,
            )
            if key is not None:
                self.cache.put(key, profile, replay_mode="per-config")
        self._emit_spans([oc])
        if not oc.ok and self.strict:
            raise oc.failure()
        return oc

    def characterize_sweep_run(
        self,
        benchmark_id: str,
        machines: "list[MachineConfig | None]",
        workloads: WorkloadSet | None = None,
        *,
        base_seed: int = 0,
        keep_profiles: bool = False,
        sampling: "SamplingPlan | None" = None,
        batched: bool | None = None,
    ) -> "tuple[list[BenchmarkCharacterization | None], list[CellOutcome]]":
        """Characterize one benchmark under N machine configs, capturing once.

        The sweep-reuse guarantee: each workload's benchmark executes
        at most once, however many machine configs are swept — every
        config replays the same captured telemetry stream.  Capture
        cost (attempts, duration) is charged to the first consuming
        cell (``capture="run"``); later consumers report
        ``capture="hit"``, so ``summary.captures`` equals the number
        of real benchmark executions.

        Exact (unsampled) replays additionally share *one pass* over the
        capture columns: all pending configs for a workload go through
        :func:`~repro.machine.batch.replay_capture_batched`, which
        carries the config set as an extra kernel dimension and is
        bit-identical to per-config replay.  ``batched=False`` forces
        the per-config loop; ``batched=None``/``True`` batch whenever
        possible (two or more pending configs, no sampling plan).
        Batched spans carry ``batched=True`` and cached profiles record
        ``replay_mode="batched"`` provenance.

        ``sampling`` applies phase-sampled replay
        (:mod:`repro.machine.sampling`) to every cell: spans carry
        ``sampled=True``, the stage span is named ``sample``, and the
        plan's cache token joins each cell's profile key so sampled
        sweeps never collide with exact ones.

        Returns one characterization per machine config, in ``machines``
        order (``None`` where no cell survived), plus the flat outcome
        list in machine-major order.  Under ``strict=True`` the first
        failed cell raises its :class:`CellFailure` after spans are
        journaled.
        """
        from .characterize import assemble_characterization

        machines = list(machines)
        if not machines:
            raise WorkloadError("characterize_sweep: need at least one machine config")
        _require_capability(benchmark_id, CAP_SWEEPABLE, stage="characterize_sweep")
        alberta = workloads is None
        if alberta:
            workloads = alberta_workloads(benchmark_id, base_seed)
        if len(workloads) == 0:
            raise WorkloadError(f"characterize_sweep: empty workload set for {benchmark_id}")
        wl = list(workloads)
        quarantined_before = self._quarantined_total()
        cache_state = "off" if self.store is None else "miss"
        token = sampling.cache_token() if sampling is not None else None
        stage_name = "sample" if token is not None else "replay"

        grid: list[list[CellOutcome | None]] = [[None] * len(wl) for _ in machines]
        keys: list[list[str | None]] = [[None] * len(wl) for _ in machines]
        need: list[tuple[int, int, _Cell]] = []
        for mi, m in enumerate(machines):
            for wi, w in enumerate(wl):
                cell = _Cell(
                    benchmark_id=benchmark_id,
                    workload_name=w.name,
                    base_seed=base_seed,
                    machine=m,
                    workload=None if alberta else w,
                )
                if self.store is not None:
                    looked_up = self.trace.now()
                    keys[mi][wi] = cache_key(benchmark_id, w, m, sampling=token)
                    cached = self.cache.get(keys[mi][wi])
                    if cached is not None:
                        grid[mi][wi] = CellOutcome(
                            cell, cached, "hit", 0, 0.0, "ok", replay="hit",
                            start_s=looked_up,
                        )
                        continue
                need.append((mi, wi, cell))

        need_w = sorted({wi for _, wi, _ in need})
        cap_cells = [
            _Cell(
                benchmark_id=benchmark_id,
                workload_name=wl[wi].name,
                base_seed=base_seed,
                machine=None,
                workload=None if alberta else wl[wi],
            )
            for wi in need_w
        ]
        batch = self._capture_batch(cap_cells, [wl[wi] for wi in need_w])
        cap_by_w = dict(zip(need_w, batch))

        # Group pending cells by workload: within one workload every
        # config replays the same capture, so exact replays can share a
        # single batched pass.  Member order is machine-major (``need``
        # order), so the first member of each group is the cell the
        # capture cost is charged to — same charging as the old
        # per-cell loop.
        by_w: dict[int, list[tuple[int, _Cell]]] = {}
        for mi, wi, cell in need:
            by_w.setdefault(wi, []).append((mi, cell))

        for wi, members in by_w.items():
            capture, state, run_oc = cap_by_w[wi]

            def _charge(j: int) -> tuple[bool, int, float, tuple]:
                fresh = state == "run" and j == 0
                if fresh and run_oc is not None:
                    return fresh, run_oc.attempts, run_oc.duration_s, run_oc.stages
                return fresh, 0, 0.0, ()

            if capture is None:
                # Capture failed: every consumer of this workload fails
                # with the capture's error; only the first is charged.
                for j, (mi, cell) in enumerate(members):
                    fresh, cap_attempts, cap_duration, _ = _charge(j)
                    grid[mi][wi] = CellOutcome(
                        cell, None, cache_state,
                        max(1, cap_attempts), cap_duration,
                        run_oc.outcome if run_oc is not None else "failed",
                        run_oc.error if run_oc is not None else "capture failed",
                        capture="run" if fresh else "-",
                        start_s=run_oc.start_s if run_oc is not None else -1.0,
                    )
                continue

            use_batched = (
                sampling is None and len(members) > 1 and batched is not False
            )
            if use_batched:
                started = time.perf_counter()
                try:
                    profiles = replay_capture_batched(
                        capture, [cell.machine for _, cell in members]
                    )
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    batch_dur = time.perf_counter() - started
                    for j, (mi, cell) in enumerate(members):
                        fresh, cap_attempts, cap_duration, cap_stages = _charge(j)
                        cell_start = (
                            run_oc.start_s
                            if fresh and run_oc is not None and run_oc.start_s >= 0
                            else self.trace.rel(started)
                        )
                        grid[mi][wi] = CellOutcome(
                            cell, None, cache_state, max(1, cap_attempts),
                            cap_duration + batch_dur, "failed", error,
                            capture="run" if fresh else "hit", replay="run",
                            start_s=cell_start, stages=cap_stages,
                            batched=True,
                        )
                    continue
                batch_dur = time.perf_counter() - started
                per_dur = batch_dur / len(members)
                for j, (mi, cell) in enumerate(members):
                    fresh, cap_attempts, cap_duration, cap_stages = _charge(j)
                    cell_start = (
                        run_oc.start_s
                        if fresh and run_oc is not None and run_oc.start_s >= 0
                        else self.trace.rel(started)
                    )
                    grid[mi][wi] = CellOutcome(
                        cell, profiles[j], cache_state, cap_attempts,
                        cap_duration + per_dur, "ok",
                        capture="run" if fresh else "hit", replay="run",
                        start_s=cell_start,
                        stages=cap_stages
                        + ((stage_name, self.trace.rel(started) - cell_start, per_dur),),
                        batched=True,
                    )
                    if keys[mi][wi] is not None:
                        self.cache.put(
                            keys[mi][wi], profiles[j], replay_mode="batched"
                        )
                continue

            for j, (mi, cell) in enumerate(members):
                fresh, cap_attempts, cap_duration, cap_stages = _charge(j)
                tracker = StageResourceTracker()
                reg = metrics.MetricsRegistry()
                started = time.perf_counter()
                if fresh and run_oc is not None and run_oc.start_s >= 0:
                    cell_start = run_oc.start_s
                else:
                    cell_start = self.trace.rel(started)
                try:
                    with metrics.collector(reg):
                        profile = replay_capture(
                            capture, machine=cell.machine, sampling=sampling
                        )
                except Exception as exc:
                    grid[mi][wi] = CellOutcome(
                        cell, None, cache_state, max(1, cap_attempts),
                        cap_duration + (time.perf_counter() - started), "failed",
                        f"{type(exc).__name__}: {exc}",
                        capture="run" if fresh else "hit", replay="run",
                        start_s=cell_start, stages=cap_stages,
                        sampled=token is not None,
                    )
                    continue
                replay_dur = time.perf_counter() - started
                res = tracker.lap()
                res["replay_events"] = int(
                    reg.value(metrics.REPLAY_EVENTS_TOTAL, benchmark=benchmark_id)
                    or 0
                )
                res["replay_ns"] = int(
                    reg.value(metrics.REPLAY_NS_TOTAL, benchmark=benchmark_id) or 0
                )
                grid[mi][wi] = CellOutcome(
                    cell, profile, cache_state, cap_attempts,
                    cap_duration + replay_dur, "ok",
                    capture="run" if fresh else "hit", replay="run",
                    start_s=cell_start,
                    stages=cap_stages
                    + (
                        (
                            stage_name,
                            self.trace.rel(started) - cell_start,
                            replay_dur,
                            res,
                        ),
                    ),
                    sampled=token is not None,
                )
                if keys[mi][wi] is not None:
                    self.cache.put(
                        keys[mi][wi], profile, replay_mode="per-config"
                    )

        self.trace.quarantine(self._quarantined_total() - quarantined_before)
        flat: list[CellOutcome] = []
        for mi in range(len(machines)):
            for wi in range(len(wl)):
                flat.append(grid[mi][wi])
        self._emit_spans(flat)
        failed = [oc for oc in flat if not oc.ok]
        if failed and self.strict:
            raise failed[0].failure()

        sum_start = self.trace.now()
        chars: list["BenchmarkCharacterization | None"] = []
        for mi in range(len(machines)):
            pairs = [(w, oc.profile) for w, oc in zip(wl, grid[mi]) if oc.ok]
            if pairs:
                chars.append(
                    assemble_characterization(
                        benchmark_id,
                        [w for w, _ in pairs],
                        [p for _, p in pairs],
                        keep_profiles=keep_profiles,
                    )
                )
            else:
                chars.append(None)
        self._emit_stage(
            "summarize", benchmark_id, "-", sum_start, self.trace.now() - sum_start
        )
        return chars, flat

    # --------------------------------------------------- characterization

    def characterize_run(
        self,
        benchmark_id: str,
        workloads: WorkloadSet | None = None,
        *,
        base_seed: int = 0,
        keep_profiles: bool = False,
    ) -> "tuple[BenchmarkCharacterization | None, list[CellOutcome]]":
        """Characterize one benchmark, reporting per-cell outcomes.

        Under ``strict=True`` a failed cell raises its
        :class:`CellFailure` (after all spans are journaled).  Under
        ``strict=False`` the characterization is assembled from the
        surviving cells (``None`` if nothing survived) and the failures
        ride along in the outcome list.
        """
        from .characterize import assemble_characterization

        alberta = workloads is None
        if alberta:
            workloads = alberta_workloads(benchmark_id, base_seed)
        if len(workloads) == 0:
            raise WorkloadError(f"characterize: empty workload set for {benchmark_id}")
        wl = list(workloads)
        cells = [
            _Cell(
                benchmark_id=benchmark_id,
                workload_name=w.name,
                base_seed=base_seed,
                machine=self.machine,
                workload=None if alberta else w,
            )
            for w in wl
        ]
        outcomes = self.run_cells(cells, wl)
        failed = [oc for oc in outcomes if not oc.ok]
        if failed and self.strict:
            raise failed[0].failure()
        pairs = [(w, oc.profile) for w, oc in zip(wl, outcomes) if oc.ok]
        char = None
        if pairs:
            sum_start = self.trace.now()
            char = assemble_characterization(
                benchmark_id,
                [w for w, _ in pairs],
                [p for _, p in pairs],
                keep_profiles=keep_profiles,
            )
            self._emit_stage(
                "summarize", benchmark_id, "-",
                sum_start, self.trace.now() - sum_start,
            )
        return char, outcomes

    def characterize(
        self,
        benchmark_id: str,
        workloads: WorkloadSet | None = None,
        *,
        base_seed: int = 0,
        keep_profiles: bool = False,
    ) -> "BenchmarkCharacterization":
        """Engine-backed equivalent of :func:`repro.core.characterize.characterize`."""
        char, outcomes = self.characterize_run(
            benchmark_id, workloads, base_seed=base_seed, keep_profiles=keep_profiles
        )
        if char is None:
            # strict=False but literally nothing survived: there is no
            # characterization to degrade to, so surface the first failure.
            raise next(oc for oc in outcomes if not oc.ok).failure()
        return char

    def characterize_suite_run(
        self,
        *,
        suite: str | None = None,
        table2_only: bool = True,
        base_seed: int = 0,
        ids: "list[str] | None" = None,
    ) -> "tuple[list[BenchmarkCharacterization], list[CellOutcome]]":
        """Fan the full benchmark × workload matrix out at once.

        The whole matrix is scheduled as a single flat cell list so the
        pool stays saturated across benchmark boundaries (a per-benchmark
        fan-out would drain to one straggler at each join).
        ``ids`` restricts the run to an explicit benchmark subset
        (overriding ``suite`` / ``table2_only``).

        Returns the characterizations (assembled per benchmark from the
        surviving cells; benchmarks with zero survivors are omitted)
        and every cell outcome.  Under ``strict=True`` the first failed
        cell raises its :class:`CellFailure` after spans are journaled.
        """
        from .characterize import assemble_characterization

        ids = sorted(ids if ids is not None else benchmark_ids(suite, table2_only=table2_only))
        sets = {bid: alberta_workloads(bid, base_seed) for bid in ids}
        cells: list[_Cell] = []
        flat: list[Workload] = []
        for bid in ids:
            for w in sets[bid]:
                cells.append(
                    _Cell(
                        benchmark_id=bid,
                        workload_name=w.name,
                        base_seed=base_seed,
                        machine=self.machine,
                    )
                )
                flat.append(w)
        outcomes = self.run_cells(cells, flat)
        failed = [oc for oc in outcomes if not oc.ok]
        if failed and self.strict:
            raise failed[0].failure()

        out: list[BenchmarkCharacterization] = []
        cursor = 0
        for bid in ids:
            wl = list(sets[bid])
            chunk = outcomes[cursor : cursor + len(wl)]
            cursor += len(wl)
            pairs = [(w, oc.profile) for w, oc in zip(wl, chunk) if oc.ok]
            if pairs:
                sum_start = self.trace.now()
                out.append(
                    assemble_characterization(
                        bid,
                        [w for w, _ in pairs],
                        [p for _, p in pairs],
                        keep_profiles=False,
                    )
                )
                self._emit_stage(
                    "summarize", bid, "-", sum_start, self.trace.now() - sum_start
                )
        return out, outcomes

    def characterize_suite(
        self,
        *,
        suite: str | None = None,
        table2_only: bool = True,
        base_seed: int = 0,
        ids: "list[str] | None" = None,
    ) -> "list[BenchmarkCharacterization]":
        """Characterizations only (see :meth:`characterize_suite_run`)."""
        chars, _ = self.characterize_suite_run(
            suite=suite, table2_only=table2_only, base_seed=base_seed, ids=ids
        )
        return chars
