"""Benchmark suite registry.

Maps SPEC CPU 2017 benchmark ids to their substrate implementations
and Alberta-workload generators, and provides suite-level iteration
(INT / FP / all) mirroring how the paper organizes Sections IV-A and
IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .workload import WorkloadSet

__all__ = ["SuiteEntry", "registry", "get_benchmark", "get_generator", "benchmark_ids"]


@dataclass(frozen=True)
class SuiteEntry:
    """One benchmark's wiring: substrate + generator factories."""

    benchmark_id: str
    suite: str  # "int" | "fp"
    make_benchmark: Callable[[], Any]
    make_generator: Callable[[], Any]
    in_table2: bool = True


def _entries() -> list[SuiteEntry]:
    # imports are local so that `import repro.core` stays light
    from ..benchmarks.blender import BlenderBenchmark
    from ..benchmarks.cactubssn import CactuBssnBenchmark
    from ..benchmarks.deepsjeng import DeepsjengBenchmark
    from ..benchmarks.exchange2 import Exchange2Benchmark
    from ..benchmarks.gcc import GccBenchmark
    from ..benchmarks.lbm import LbmBenchmark
    from ..benchmarks.leela import LeelaBenchmark
    from ..benchmarks.mcf import McfBenchmark
    from ..benchmarks.nab import NabBenchmark
    from ..benchmarks.omnetpp import OmnetppBenchmark
    from ..benchmarks.parest import ParestBenchmark
    from ..benchmarks.povray import PovrayBenchmark
    from ..benchmarks.wrf import WrfBenchmark
    from ..benchmarks.x264 import X264Benchmark
    from ..benchmarks.xalancbmk import XalancbmkBenchmark
    from ..benchmarks.xz import XzBenchmark
    from ..workloads.blender_gen import BlenderWorkloadGenerator
    from ..workloads.cactubssn_gen import CactuBssnWorkloadGenerator
    from ..workloads.deepsjeng_gen import DeepsjengWorkloadGenerator
    from ..workloads.exchange2_gen import Exchange2WorkloadGenerator
    from ..workloads.gcc_gen import GccWorkloadGenerator
    from ..workloads.lbm_gen import LbmWorkloadGenerator
    from ..workloads.leela_gen import LeelaWorkloadGenerator
    from ..workloads.mcf_gen import McfWorkloadGenerator
    from ..workloads.nab_gen import NabWorkloadGenerator
    from ..workloads.omnetpp_gen import OmnetppWorkloadGenerator
    from ..workloads.parest_gen import ParestWorkloadGenerator
    from ..workloads.povray_gen import PovrayWorkloadGenerator
    from ..workloads.wrf_gen import WrfWorkloadGenerator
    from ..workloads.x264_gen import X264WorkloadGenerator
    from ..workloads.xalancbmk_gen import XalancbmkWorkloadGenerator
    from ..workloads.xz_gen import XzWorkloadGenerator

    return [
        SuiteEntry("502.gcc_r", "int", GccBenchmark, GccWorkloadGenerator),
        SuiteEntry("505.mcf_r", "int", McfBenchmark, McfWorkloadGenerator),
        SuiteEntry("507.cactuBSSN_r", "fp", CactuBssnBenchmark, CactuBssnWorkloadGenerator),
        SuiteEntry("510.parest_r", "fp", ParestBenchmark, ParestWorkloadGenerator),
        SuiteEntry("511.povray_r", "fp", PovrayBenchmark, PovrayWorkloadGenerator),
        SuiteEntry("519.lbm_r", "fp", LbmBenchmark, LbmWorkloadGenerator),
        SuiteEntry("520.omnetpp_r", "int", OmnetppBenchmark, OmnetppWorkloadGenerator),
        SuiteEntry("521.wrf_r", "fp", WrfBenchmark, WrfWorkloadGenerator),
        SuiteEntry("523.xalancbmk_r", "int", XalancbmkBenchmark, XalancbmkWorkloadGenerator),
        # 525.x264_r has Alberta workloads (Section IV-A) but no Table II row
        SuiteEntry("525.x264_r", "int", X264Benchmark, X264WorkloadGenerator, in_table2=False),
        SuiteEntry("526.blender_r", "fp", BlenderBenchmark, BlenderWorkloadGenerator),
        SuiteEntry("531.deepsjeng_r", "int", DeepsjengBenchmark, DeepsjengWorkloadGenerator),
        SuiteEntry("541.leela_r", "int", LeelaBenchmark, LeelaWorkloadGenerator),
        SuiteEntry("544.nab_r", "fp", NabBenchmark, NabWorkloadGenerator),
        SuiteEntry("548.exchange2_r", "int", Exchange2Benchmark, Exchange2WorkloadGenerator),
        SuiteEntry("557.xz_r", "int", XzBenchmark, XzWorkloadGenerator),
    ]


_REGISTRY: dict[str, SuiteEntry] | None = None


def registry() -> dict[str, SuiteEntry]:
    """The suite registry, keyed by benchmark id (built lazily)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = {e.benchmark_id: e for e in _entries()}
    return _REGISTRY


def benchmark_ids(
    suite: str | None = None,
    *,
    table2_only: bool = False,
) -> list[str]:
    """Benchmark ids, optionally filtered to one suite or Table II rows."""
    out = []
    for bid, entry in registry().items():
        if suite is not None and entry.suite != suite:
            continue
        if table2_only and not entry.in_table2:
            continue
        out.append(bid)
    return out


def get_benchmark(benchmark_id: str) -> Any:
    """Instantiate the substrate for a benchmark id."""
    entry = registry().get(benchmark_id)
    if entry is None:
        raise KeyError(f"unknown benchmark {benchmark_id!r}")
    return entry.make_benchmark()


def get_generator(benchmark_id: str) -> Any:
    """Instantiate the workload generator for a benchmark id."""
    entry = registry().get(benchmark_id)
    if entry is None:
        raise KeyError(f"unknown benchmark {benchmark_id!r}")
    return entry.make_generator()


def alberta_workloads(benchmark_id: str, base_seed: int = 0) -> WorkloadSet:
    """The default Alberta workload set for a benchmark."""
    return get_generator(benchmark_id).alberta_set(base_seed)
