"""Benchmark suite view — a compatibility shim over the registry.

Historically this module *was* the registry: sixteen hardcoded
import pairs mapping SPEC CPU 2017 benchmark ids to substrates and
Alberta-workload generators.  The declarative scenario registry
(:mod:`repro.core.registry`) now owns that wiring — the benchmark and
generator modules self-register via decorators — and this module keeps
the old call surface alive by delegating:

* :func:`registry` still returns ``{benchmark_id: SuiteEntry}``;
* :func:`benchmark_ids` / :func:`get_benchmark` / :func:`get_generator`
  / :func:`alberta_workloads` are re-exported from the registry
  unchanged (same signatures, same semantics; unknown ids now raise
  :class:`~repro.core.errors.UnknownScenarioError`, which still *is a*
  ``KeyError``).

New code should query :data:`repro.core.registry.REGISTRY` directly —
registry descriptors carry capability flags and cache fingerprints that
this legacy view flattens away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .registry import (  # noqa: F401 - re-exported compatibility surface
    CAP_IN_TABLE2,
    REGISTRY,
    alberta_workloads,
    benchmark_ids,
    get_benchmark,
    get_generator,
)

__all__ = ["SuiteEntry", "registry", "get_benchmark", "get_generator", "benchmark_ids"]


@dataclass(frozen=True)
class SuiteEntry:
    """One benchmark's wiring: substrate + generator factories."""

    benchmark_id: str
    suite: str  # "int" | "fp"
    make_benchmark: Callable[[], Any]
    make_generator: Callable[[], Any]
    in_table2: bool = True


def registry() -> dict[str, SuiteEntry]:
    """The legacy suite view, keyed by benchmark id.

    Built fresh from registry descriptors on every call (cheap), so
    plugin-registered benchmarks appear here too once loaded.  Only
    benchmarks with both a substrate and a generator descriptor (each
    carrying a live factory) are listed — exactly the pairs the old
    hardcoded table could express.
    """
    out: dict[str, SuiteEntry] = {}
    for d in REGISTRY.descriptors("benchmark"):
        gen = REGISTRY.find("generator", d.id)
        if d.factory is None or gen is None or gen.factory is None:
            continue
        out[d.id] = SuiteEntry(
            benchmark_id=d.id,
            suite=d.suite or "",
            make_benchmark=d.factory,
            make_generator=gen.factory,
            in_table2=CAP_IN_TABLE2 in d.capabilities,
        )
    return out
