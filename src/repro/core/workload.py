"""Workload value objects.

A *workload* is the input that turns a benchmark program into a
benchmark ("a mark on a bench", as the paper puts it).  In the real
Alberta Workloads a workload is a directory of input files plus control
parameters; here it is a :class:`Workload` carrying a payload object
(whatever the mini-benchmark consumes) plus provenance metadata
(generator name, seed, parameters) so every workload is reproducible.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Workload", "WorkloadSet", "WorkloadKind"]


class WorkloadKind:
    """The provenance classes from Section IV of the paper."""

    #: Files publicly available online, used as-is (e.g. gcc single-file C).
    PUBLIC = "public"
    #: Public resources combined/modified to be suitable (e.g. xalancbmk).
    DERIVED = "derived"
    #: A script automates generation from online resources (e.g. leela).
    SCRIPTED = "scripted"
    #: Fully procedural generation from a seed (e.g. mcf).
    PROCEDURAL = "procedural"
    #: Manually authored from documentation (e.g. cactuBSSN parameters).
    MANUAL = "manual"
    #: A workload distributed with SPEC itself (train/refrate/test).
    SPEC = "spec"

    ALL = (PUBLIC, DERIVED, SCRIPTED, PROCEDURAL, MANUAL, SPEC)


@dataclass(frozen=True)
class Workload:
    """One benchmark input with reproducibility metadata.

    Attributes:
        name: unique human-readable identifier, e.g. ``"mcf.alberta.1"``.
        benchmark: SPEC-style benchmark id, e.g. ``"505.mcf_r"``.
        payload: the object the mini-benchmark consumes (opaque here).
        kind: one of :class:`WorkloadKind`.
        seed: RNG seed used by the generator, if procedural.
        params: generator parameters for the manifest.
    """

    name: str
    benchmark: str
    payload: Any
    kind: str = WorkloadKind.PROCEDURAL
    seed: int | None = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Workload.name must be non-empty")
        if self.kind not in WorkloadKind.ALL:
            raise ValueError(f"unknown workload kind {self.kind!r}")

    def manifest(self) -> dict[str, Any]:
        """Serializable provenance record (sans payload)."""
        return {
            "name": self.name,
            "benchmark": self.benchmark,
            "kind": self.kind,
            "seed": self.seed,
            "params": dict(self.params),
        }


class WorkloadSet:
    """An ordered, name-unique collection of workloads for one benchmark."""

    def __init__(self, benchmark: str, workloads: list[Workload] | None = None):
        self.benchmark = benchmark
        self._workloads: list[Workload] = []
        self._by_name: dict[str, Workload] = {}
        for w in workloads or []:
            self.add(w)

    def add(self, workload: Workload) -> None:
        if workload.benchmark != self.benchmark:
            raise ValueError(
                f"workload {workload.name!r} targets {workload.benchmark!r}, "
                f"not {self.benchmark!r}"
            )
        if workload.name in self._by_name:
            raise ValueError(f"duplicate workload name {workload.name!r}")
        self._workloads.append(workload)
        self._by_name[workload.name] = workload

    def __len__(self) -> int:
        return len(self._workloads)

    def __iter__(self) -> Iterator[Workload]:
        return iter(self._workloads)

    def __getitem__(self, key: int | str) -> Workload:
        if isinstance(key, str):
            try:
                return self._by_name[key]
            except KeyError:
                from .errors import UnknownScenarioError

                raise UnknownScenarioError(
                    f"{self.benchmark} workload", key, self._by_name
                ) from None
        return self._workloads[key]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        return [w.name for w in self._workloads]

    def manifest(self) -> list[dict[str, Any]]:
        """Manifest entries for all workloads, in order."""
        return [w.manifest() for w in self._workloads]
