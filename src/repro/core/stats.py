"""Summarization statistics from Section V of the paper.

The paper characterizes how sensitive a benchmark's behaviour is to its
workload by summarizing per-workload ratios (top-down cycle fractions,
or per-method time fractions) into a single number.  The pipeline is:

1. geometric mean of a ratio across workloads        (Eq. 1)
2. geometric standard deviation of the ratio          (Eq. 2)
3. proportional variation ``V = sigma_g / mu_g``      (Eq. 3)
4. geometric mean of the four top-down variations     (Eq. 4) -> ``mu_g(V)``
5. geometric mean of per-method variations            (Eq. 5) -> ``mu_g(M)``

All functions operate on plain sequences of floats and are deliberately
free of any benchmark-specific knowledge.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

__all__ = [
    "geometric_mean",
    "geometric_std",
    "proportional_variation",
    "summarize_ratio",
    "RatioSummary",
    "mu_g_of_variations",
    "method_variation",
    "COVERAGE_FLOOR",
    "OTHERS_THRESHOLD",
]

# The paper adds 0.01 to every per-method time value, on the percentage
# scale (0-100), so that methods with zero time in some workload do not
# zero out the geometric mean.
COVERAGE_FLOOR = 0.01

# Methods accounting for less than 0.05% of time in *all* workloads are
# folded into an "others" bucket before computing mu_g(M).  Coverage is
# carried as fractions in [0, 1], hence 0.0005.
OTHERS_THRESHOLD = 0.0005


def _validate_positive(values: Sequence[float], what: str) -> None:
    if len(values) == 0:
        raise ValueError(f"{what}: need at least one value")
    for v in values:
        if not math.isfinite(v):
            raise ValueError(f"{what}: non-finite value {v!r}")
        if v <= 0.0:
            raise ValueError(f"{what}: geometric statistics require strictly positive values, got {v!r}")


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (Equation 1 of the paper).

    ``mu_g = (prod_i x_i) ** (1/n)``, computed in log space for
    numerical stability.  All values must be strictly positive.
    """
    _validate_positive(values, "geometric_mean")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geometric_std(values: Sequence[float], mu_g: float | None = None) -> float:
    """Geometric standard deviation (Equation 2 of the paper).

    ``sigma_g = exp(sqrt(mean((ln(x_i / mu_g))**2)))``.

    Note the paper (like the classical definition) uses the population
    form (divide by ``n``).  The result is dimensionless and always
    >= 1.0, with 1.0 meaning no variation at all.
    """
    _validate_positive(values, "geometric_std")
    if mu_g is None:
        mu_g = geometric_mean(values)
    variance = sum(math.log(v / mu_g) ** 2 for v in values) / len(values)
    return math.exp(math.sqrt(variance))


def proportional_variation(values: Sequence[float]) -> float:
    """Proportional variation ``V = sigma_g / mu_g`` (Equation 3).

    The paper uses this instead of the coefficient of variation because
    the underlying values are themselves ratios.  Small geometric means
    combined with large geometric standard deviations produce large
    values of ``V`` — the paper calls this out as a caveat for
    ``519.lbm_r`` and ``507.cactuBSSN_r``.
    """
    mu = geometric_mean(values)
    sigma = geometric_std(values, mu)
    return sigma / mu


class RatioSummary:
    """Summary of one ratio (e.g. front-end-bound fraction) across workloads.

    Bundles the three statistics the paper reports per category so that
    callers never recompute ``mu_g`` when deriving ``sigma_g`` and ``V``.
    """

    __slots__ = ("mu_g", "sigma_g", "variation", "n")

    def __init__(self, values: Sequence[float]):
        _validate_positive(values, "RatioSummary")
        self.n = len(values)
        self.mu_g = geometric_mean(values)
        self.sigma_g = geometric_std(values, self.mu_g)
        self.variation = self.sigma_g / self.mu_g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RatioSummary(n={self.n}, mu_g={self.mu_g:.4g}, "
            f"sigma_g={self.sigma_g:.4g}, V={self.variation:.4g})"
        )


def summarize_ratio(values: Sequence[float]) -> RatioSummary:
    """Convenience constructor matching the paper's per-category summary."""
    return RatioSummary(values)


def mu_g_of_variations(variations: Iterable[float]) -> float:
    """Geometric mean of proportional variations (Equations 4 and 5).

    For the top-down methodology the iterable has exactly four entries
    (front-end, back-end, bad-speculation, retiring) and the result is
    the paper's ``mu_g(V)``.  For method coverage it has one entry per
    method and the result is ``mu_g(M)``.
    """
    vals = list(variations)
    return geometric_mean(vals)


def method_variation(
    coverage_by_workload: Sequence[Mapping[str, float]],
    *,
    others_threshold: float = OTHERS_THRESHOLD,
    floor: float = COVERAGE_FLOOR,
) -> float:
    """Compute ``mu_g(M)`` (Equation 5) from per-workload method coverage.

    ``coverage_by_workload`` is one mapping per workload from method name
    to the *fraction* of execution time spent in that method (values in
    [0, 1], summing to ~1 per workload).

    Following Section V-C of the paper:

    * methods that account for less than ``others_threshold`` (0.05%) of
      the time in **all** workloads are grouped into an ``"others"``
      category;
    * per-method time is taken on the percentage scale and the constant
      ``floor`` (0.01) is added so the geometric statistics are defined
      even when a method never runs in some workload.

    The summarized quantity per method is its geometric standard
    deviation ``sigma_g`` across workloads, and ``mu_g(M)`` is the
    geometric mean of those.  (The paper's Eq. 5 nominally uses
    ``V = sigma_g / mu_g``, but the published Table II values — exactly
    1 for every benchmark whose coverage does not shift with the
    workload — are only consistent with the ``sigma_g`` form, which is
    what we reproduce; ``V`` per method remains available through
    :func:`repro.core.coverage.summarize_coverage`.)
    """
    if not coverage_by_workload:
        raise ValueError("method_variation: need at least one workload")

    all_methods: set[str] = set()
    for cov in coverage_by_workload:
        all_methods.update(cov.keys())
    if not all_methods:
        raise ValueError("method_variation: no methods present in coverage data")

    significant: list[str] = []
    grouped: list[str] = []
    for m in sorted(all_methods):
        peak = max(cov.get(m, 0.0) for cov in coverage_by_workload)
        if peak < others_threshold:
            grouped.append(m)
        else:
            significant.append(m)

    sigmas: list[float] = []
    for m in significant:
        series = [cov.get(m, 0.0) * 100.0 + floor for cov in coverage_by_workload]
        sigmas.append(geometric_std(series))

    if grouped:
        series = [
            sum(cov.get(m, 0.0) for m in grouped) * 100.0 + floor
            for cov in coverage_by_workload
        ]
        sigmas.append(geometric_std(series))

    return mu_g_of_variations(sigmas)
