"""Persistent, crash-tolerant run ledger: the cross-run observability store.

A single run's journal (:mod:`repro.core.trace`) answers "what happened
inside this run"; the ledger answers "what changed *between* runs".
Every :class:`~repro.core.run.Session` appends one JSON record at
completion to ``runs.jsonl`` in the ledger directory (opt-in via
``Session(ledger=...)`` or ``REPRO_LEDGER_DIR``), carrying:

* identity — run id, start/finish timestamps, wall duration;
* scope — benchmark ids, registry fingerprints of the scenario set
  (benchmark + machine descriptors), the machine config / sweep grids,
  and any FDO build digests replayed;
* outcome — ``ok`` / ``degraded`` / ``failed`` plus the full stage
  tallies from the run summary (cells, captures, replays, hits,
  sampled, retries, quarantined);
* measurements — per-benchmark replay throughput derived from the
  replay counters, and the complete lossless
  :meth:`~repro.core.metrics.MetricsRegistry.to_dict` snapshot.

Durability model: records are appended with a single ``O_APPEND``
``os.write`` — concurrent Sessions sharing one ledger directory never
interleave bytes on a local filesystem, and a crash mid-append leaves
at most one torn tail line, which the reader skips.  A compact
``index.jsonl`` (one small line per run) makes listing cheap without
parsing full metric snapshots; it is self-healing — any disagreement
with ``runs.jsonl`` triggers a rebuild — so it can always be deleted.
``pins.json`` holds run ids that :meth:`RunLedger.gc` must never
delete; GC also always protects the N most recent runs and rewrites
files atomically (``tmp`` + ``os.replace``).

Diffing (``repro runs diff A B``) compares two records
metric-by-metric under per-family *tolerance classes*:

* **exact** — deterministic work counters (cells, emitted/replayed
  events, sampled replays).  Any difference is a finding.  Series are
  aggregated over the ``cache`` label first, so a warm run and a cold
  run of the same scenario set agree on totals.
* **timing** — wall-clock and throughput measurements (stage/cell
  seconds, replay ns, eps, stage CPU seconds, derived per-benchmark
  throughput).  Compared with a relative tolerance (default 25%).
* **info** — everything else (cache/worker/RSS/sampling internals):
  recorded, never diffed.

The derived throughput honors ``REPRO_WATCHDOG_INJECT_SLOWDOWN`` the
same way the watchdog does (measured eps divided by the factor) — the
documented CI hook for validating that ``repro runs diff`` actually
flags a slowed run.  :func:`ledger_baseline` turns recent records into
a rolling-median baseline consumable by ``repro watchdog
--ledger-baseline``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Any, Iterable, Mapping, Sequence

from .errors import ReproError

__all__ = [
    "LEDGER_ENV",
    "LEDGER_SCHEMA",
    "LedgerError",
    "RunLedger",
    "build_record",
    "classify_metric",
    "diff_records",
    "DiffEntry",
    "DiffReport",
    "ledger_baseline",
    "render_record",
    "render_runs_table",
]

#: Default ledger directory for every Session when set in the environment.
LEDGER_ENV = "REPRO_LEDGER_DIR"

LEDGER_SCHEMA = 1

#: Mirrors :data:`repro.core.watchdog._INJECT_ENV` — recorded throughput
#: is divided by the factor so an injected run is visibly slower in the
#: ledger, exercisable by CI without a genuinely slow machine.
_INJECT_ENV = "REPRO_WATCHDOG_INJECT_SLOWDOWN"

_RUNS_FILE = "runs.jsonl"
_INDEX_FILE = "index.jsonl"
_PINS_FILE = "pins.json"

#: Deterministic work counters: any cross-run difference is a finding.
EXACT_FAMILIES = frozenset(
    {
        "repro_cells_total",
        "repro_events_emitted_total",
        "repro_replay_events_total",
        "repro_sampled_replays_total",
    }
)

#: Wall-clock / throughput measurements: compared with relative tolerance.
TIMING_FAMILIES = frozenset(
    {
        "repro_stage_seconds",
        "repro_cell_seconds",
        "repro_replay_ns_total",
        "repro_replay_eps",
        "repro_stage_cpu_seconds",
    }
)

#: Labels aggregated away before exact comparison: a warm and a cold run
#: disagree per cache state but must agree on totals; worker pids are
#: never stable across runs.
_AGGREGATE_LABELS = frozenset({"cache", "worker"})

#: Absolute noise floor per timing family: differences at or below the
#: floor are never findings, however large in relative terms — a 30µs
#: generate stage doubling is scheduler jitter, not a regression.
_TIMING_FLOORS = {
    "repro_stage_seconds": 0.01,
    "repro_cell_seconds": 0.01,
    "repro_stage_cpu_seconds": 0.01,
    "repro_replay_ns_total": 1e7,  # 10ms, same floor in ns
}


class LedgerError(ReproError):
    """Unusable ledger directory, record, or run reference."""


def classify_metric(family: str) -> str:
    """Tolerance class for one metric family: exact | timing | info."""
    if family in EXACT_FAMILIES:
        return "exact"
    if family in TIMING_FAMILIES:
        return "timing"
    return "info"


def _injected_slowdown() -> float:
    raw = os.environ.get(_INJECT_ENV, "").strip()
    try:
        factor = float(raw) if raw else 1.0
    except ValueError:
        return 1.0
    return factor if factor > 0 else 1.0


def _counter_by_benchmark(snapshot: Mapping[str, Any], family: str) -> dict[str, float]:
    """Sum a counter family's series per ``benchmark`` label value."""
    fam = (snapshot.get("metrics") or {}).get(family)
    out: dict[str, float] = {}
    if not fam or "benchmark" not in fam.get("labels", ()):
        return out
    idx = list(fam["labels"]).index("benchmark")
    for s in fam.get("series", ()):
        bench = s["labels"][idx]
        out[bench] = out.get(bench, 0.0) + float(s.get("value", 0.0))
    return out


def derive_throughput(snapshot: Mapping[str, Any]) -> dict[str, dict[str, float]]:
    """Per-benchmark replay throughput from the metrics snapshot.

    ``{bench: {"events", "ns", "eps"}}``; eps is divided by any injected
    slowdown so the record reflects the (possibly simulated) speed the
    run actually achieved.
    """
    events = _counter_by_benchmark(snapshot, "repro_replay_events_total")
    ns = _counter_by_benchmark(snapshot, "repro_replay_ns_total")
    slowdown = _injected_slowdown()
    out: dict[str, dict[str, float]] = {}
    for bench, ev in sorted(events.items()):
        n = ns.get(bench, 0.0)
        out[bench] = {
            "events": ev,
            "ns": n * slowdown,
            "eps": (ev / (n / 1e9)) / slowdown if n else 0.0,
        }
    return out


def build_record(
    *,
    run_id: str,
    started_at: float,
    finished_at: float,
    summary: Mapping[str, Any],
    metrics_snapshot: Mapping[str, Any],
    benchmarks: Sequence[str] = (),
    machine: Any = None,
    grids: Sequence[str] = (),
    scenarios: Mapping[str, str] | None = None,
    builds: Mapping[str, str] | None = None,
    trace_path: str | None = None,
) -> dict[str, Any]:
    """Assemble one schema-1 ledger record from a finished run's state.

    ``summary`` is a :class:`~repro.core.trace.RunSummary` dict (its
    ``type``/``duration_s`` bookkeeping keys are dropped); the outcome
    is derived from it: every cell failed → ``failed``, any failure or
    quarantine → ``degraded``, else ``ok``.
    """
    counts = {
        k: v for k, v in summary.items() if k not in ("type", "duration_s")
    }
    cells = int(counts.get("cells", 0))
    ok = int(counts.get("ok", 0))
    failed = int(counts.get("failed", 0))
    quarantined = int(counts.get("quarantined", 0))
    if cells and ok == 0:
        outcome = "failed"
    elif failed or quarantined:
        outcome = "degraded"
    else:
        outcome = "ok"
    return {
        "schema": LEDGER_SCHEMA,
        "run_id": str(run_id),
        "started_at": float(started_at),
        "finished_at": float(finished_at),
        "duration_s": max(0.0, float(finished_at) - float(started_at)),
        "outcome": outcome,
        "benchmarks": sorted(set(benchmarks)),
        "machine": machine,
        "grids": sorted(set(grids)),
        "scenarios": dict(scenarios or {}),
        "builds": dict(builds or {}),
        "counts": counts,
        "throughput": derive_throughput(metrics_snapshot),
        "trace_path": trace_path,
        "metrics": dict(metrics_snapshot),
    }


def _index_entry(record: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "run_id": record["run_id"],
        "started_at": record["started_at"],
        "duration_s": record["duration_s"],
        "outcome": record["outcome"],
        "benchmarks": record.get("benchmarks", []),
        "cells": (record.get("counts") or {}).get("cells", 0),
    }


def _read_jsonl(path: Path) -> list[dict[str, Any]]:
    """Every decodable object line; torn/corrupt lines are skipped.

    Crash-mid-append leaves a partial final line; a reader racing a
    writer can see the same thing.  Either way the damage is confined
    to lines that fail to parse — complete records always survive.
    """
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    out: list[dict[str, Any]] = []
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue
        if isinstance(obj, dict):
            out.append(obj)
    return out


def _append_line(path: Path, obj: Mapping[str, Any]) -> None:
    """Append one JSON line with a single ``O_APPEND`` write.

    If a previous writer crashed mid-append the file can end on a torn
    line with no newline; writing straight after it would weld the new
    record onto the garbage and lose both.  Prefixing a newline in that
    case sacrifices only the already-torn tail.
    """
    data = (json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n").encode()
    try:
        with open(path, "rb") as fh:
            fh.seek(0, os.SEEK_END)
            if fh.tell():
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    data = b"\n" + data
    except FileNotFoundError:
        pass
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def _rewrite_jsonl(path: Path, objs: Iterable[Mapping[str, Any]]) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        for obj in objs:
            fh.write(json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n")
    os.replace(tmp, path)


class RunLedger:
    """Append-only run history in one directory (see module docstring)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / _RUNS_FILE
        self.index_path = self.root / _INDEX_FILE
        self.pins_path = self.root / _PINS_FILE

    # ---------------------------------------------------------- writing

    def append(self, record: Mapping[str, Any]) -> dict[str, Any]:
        """Durably append one record; returns its compact index entry."""
        if record.get("schema") != LEDGER_SCHEMA:
            raise LedgerError(
                f"ledger record schema {record.get('schema')!r} != {LEDGER_SCHEMA}"
            )
        if not record.get("run_id"):
            raise LedgerError("ledger record has no run_id")
        _append_line(self.path, record)
        entry = _index_entry(record)
        _append_line(self.index_path, entry)
        return entry

    # ---------------------------------------------------------- reading

    def records(self) -> list[dict[str, Any]]:
        """Full records in append order (oldest first)."""
        return [r for r in _read_jsonl(self.path) if r.get("run_id")]

    def index(self) -> list[dict[str, Any]]:
        """Compact per-run entries; rebuilt whenever stale or damaged."""
        entries = [e for e in _read_jsonl(self.index_path) if e.get("run_id")]
        records = self.records()
        if [e["run_id"] for e in entries] != [r["run_id"] for r in records]:
            entries = [_index_entry(r) for r in records]
            if records or self.index_path.exists():
                _rewrite_jsonl(self.index_path, entries)
        return entries

    def get(self, run_id: str) -> dict[str, Any]:
        for record in self.records():
            if record["run_id"] == run_id:
                return record
        raise LedgerError(f"run {run_id!r} not in ledger {self.root}")

    def resolve(self, ref: str) -> dict[str, Any]:
        """A record by reference: ``latest``, ``prev``, id, or unique prefix."""
        records = self.records()
        if not records:
            raise LedgerError(f"ledger {self.root} is empty")
        if ref == "latest":
            return records[-1]
        if ref == "prev":
            if len(records) < 2:
                raise LedgerError(f"ledger {self.root} has no previous run")
            return records[-2]
        matches = [r for r in records if r["run_id"].startswith(ref)]
        exact = [r for r in matches if r["run_id"] == ref]
        if exact:
            return exact[-1]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise LedgerError(f"run {ref!r} not in ledger {self.root}")
        raise LedgerError(
            f"run prefix {ref!r} is ambiguous: "
            + ", ".join(r["run_id"] for r in matches)
        )

    def query(
        self,
        *,
        benchmark: str | None = None,
        outcome: str | None = None,
        since: float | None = None,
        until: float | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Filtered records, oldest first; ``limit`` keeps the newest N."""
        out = []
        for record in self.records():
            if benchmark is not None and benchmark not in record.get("benchmarks", []):
                continue
            if outcome is not None and record.get("outcome") != outcome:
                continue
            started = record.get("started_at", 0.0)
            if since is not None and started < since:
                continue
            if until is not None and started > until:
                continue
            out.append(record)
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    # ------------------------------------------------------------- pins

    def pins(self) -> set[str]:
        try:
            raw = json.loads(self.pins_path.read_text(encoding="utf-8"))
        except (FileNotFoundError, ValueError):
            return set()
        return {str(r) for r in raw} if isinstance(raw, list) else set()

    def _write_pins(self, pins: set[str]) -> None:
        tmp = self.pins_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(sorted(pins)) + "\n", encoding="utf-8")
        os.replace(tmp, self.pins_path)

    def pin(self, ref: str) -> str:
        """Protect one run from GC; returns the resolved run id."""
        run_id = self.resolve(ref)["run_id"]
        self._write_pins(self.pins() | {run_id})
        return run_id

    def unpin(self, ref: str) -> str:
        run_id = self.resolve(ref)["run_id"]
        self._write_pins(self.pins() - {run_id})
        return run_id

    # --------------------------------------------------------- retention

    def gc(
        self,
        *,
        keep: int = 10,
        max_age_s: float | None = None,
        now: float | None = None,
    ) -> list[str]:
        """Drop expendable runs; returns the removed run ids.

        Never removes a pinned run or any of the ``keep`` most recent.
        With ``max_age_s`` set, unprotected runs are removed only once
        older than that; without it every unprotected run goes.  The
        survivors are rewritten atomically (tmp + ``os.replace``) —
        don't run GC concurrently with a live appender.
        """
        if keep < 0:
            raise LedgerError(f"gc: keep must be >= 0, got {keep}")
        records = self.records()
        pinned = self.pins()
        now = time.time() if now is None else now
        protected = {r["run_id"] for r in records[len(records) - keep:]} if keep else set()
        survivors, removed = [], []
        for record in records:
            rid = record["run_id"]
            old_enough = (
                max_age_s is None
                or now - record.get("started_at", now) > max_age_s
            )
            if rid in pinned or rid in protected or not old_enough:
                survivors.append(record)
            else:
                removed.append(rid)
        if removed:
            _rewrite_jsonl(self.path, survivors)
            _rewrite_jsonl(self.index_path, [_index_entry(r) for r in survivors])
        return removed


# -------------------------------------------------------------- diffing


@dataclass(frozen=True)
class DiffEntry:
    """One compared series: a metric family under one label set."""

    metric: str
    labels: str
    cls: str  # "exact" | "timing"
    a: float
    b: float
    ok: bool

    @property
    def ratio(self) -> float:
        """b/a where defined; 0 when a is 0 and b isn't."""
        if self.a == 0.0:
            return 1.0 if self.b == 0.0 else 0.0
        return self.b / self.a

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "labels": self.labels,
            "class": self.cls,
            "a": self.a,
            "b": self.b,
            "ratio": self.ratio,
            "ok": self.ok,
        }


@dataclass
class DiffReport:
    """Everything ``repro runs diff A B`` decided."""

    run_a: str
    run_b: str
    tolerance: float
    entries: list[DiffEntry] = field(default_factory=list)
    ignored: int = 0

    @property
    def out_of_tolerance(self) -> list[DiffEntry]:
        return [e for e in self.entries if not e.ok]

    @property
    def ok(self) -> bool:
        return not self.out_of_tolerance

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "tolerance": self.tolerance,
            "compared": len(self.entries),
            "ignored": self.ignored,
            "out_of_tolerance": len(self.out_of_tolerance),
            "ok": self.ok,
            "entries": [e.to_dict() for e in self.entries],
        }

    def render(self, *, verbose: bool = False) -> str:
        lines = [
            f"runs diff: {self.run_a} -> {self.run_b} "
            f"(timing tolerance {self.tolerance:.0%})"
        ]
        shown = self.entries if verbose else self.out_of_tolerance
        if shown:
            lines.append(
                f"  {'class':<7} {'metric':<28} {'labels':<34} "
                f"{'A':>14} {'B':>14} {'ratio':>7}"
            )
        for e in shown:
            flag = "ok" if e.ok else ("MISMATCH" if e.cls == "exact" else "OUT-OF-TOL")
            lines.append(
                f"  {e.cls:<7} {e.metric:<28} {e.labels:<34} "
                f"{e.a:>14,.6g} {e.b:>14,.6g} {e.ratio:>6.2f}x  {flag}"
            )
        n_out = len(self.out_of_tolerance)
        lines.append(
            f"runs diff: {len(self.entries)} series compared, "
            f"{self.ignored} info series ignored, "
            + (f"{n_out} OUT OF TOLERANCE" if n_out else "all within tolerance")
        )
        return "\n".join(lines)


def _diff_series(record: Mapping[str, Any]) -> dict[tuple[str, str, str], float]:
    """Flatten one record into comparable ``(cls, metric, labels) → value``.

    Covers the derived throughput block plus every exact/timing metric
    family in the snapshot (counters/gauges by value, histograms by
    mean), with :data:`_AGGREGATE_LABELS` summed away for exact
    counters.  Returns ``{(cls, metric, labels): value}``.
    """
    out: dict[tuple[str, str, str], float] = {}
    for bench, t in (record.get("throughput") or {}).items():
        if t.get("eps"):
            out[("timing", "throughput.eps", bench)] = float(t["eps"])
    counts = record.get("counts") or {}
    for key in ("cells", "ok", "failed", "captures", "replays_sampled"):
        if key in counts:
            out[("exact", f"counts.{key}", "-")] = float(counts[key])
    for family, fam in ((record.get("metrics") or {}).get("metrics") or {}).items():
        cls = classify_metric(family)
        if cls == "info":
            continue
        labels = list(fam.get("labels", ()))
        keep = [i for i, name in enumerate(labels) if name not in _AGGREGATE_LABELS]
        for s in fam.get("series", ()):
            key_labels = ",".join(
                f"{labels[i]}={s['labels'][i]}" for i in keep
            ) or "-"
            if "value" in s:
                value = float(s["value"])
            else:
                value = float(s["sum"]) / s["count"] if s.get("count") else 0.0
            k = (cls, family, key_labels)
            if cls == "exact":
                out[k] = out.get(k, 0.0) + value
            else:
                # Aggregated timing series would average badly; last wins
                # is fine because timing families keep their full labels.
                out[k] = value
    return out


def _count_info(record: Mapping[str, Any]) -> int:
    n = 0
    for family, fam in ((record.get("metrics") or {}).get("metrics") or {}).items():
        if classify_metric(family) == "info":
            n += len(fam.get("series", ()))
    return n


def diff_records(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    *,
    tolerance: float = 0.25,
) -> DiffReport:
    """Compare two ledger records metric-by-metric (see module docstring).

    Exact series must match to the digit; timing series must agree
    within ``tolerance`` relative difference (``|a-b| / max(a, b)``).
    A series present on only one side is a finding in its class.
    """
    if not 0.0 <= tolerance < 1.0:
        raise LedgerError(f"diff: tolerance {tolerance} must be in [0, 1)")
    report = DiffReport(
        run_a=str(a.get("run_id")), run_b=str(b.get("run_id")), tolerance=tolerance
    )
    sa, sb = _diff_series(a), _diff_series(b)
    for key in sorted(set(sa) | set(sb)):
        cls, metric, labels = key
        va, vb = sa.get(key), sb.get(key)
        if va is None or vb is None:
            report.entries.append(
                DiffEntry(metric, labels, cls, va or 0.0, vb or 0.0, ok=False)
            )
            continue
        if cls == "exact":
            ok = va == vb
        elif va == vb:
            ok = True
        else:
            ok = (
                abs(va - vb) <= _TIMING_FLOORS.get(metric, 0.0)
                or abs(va - vb) / max(abs(va), abs(vb)) <= tolerance
            )
        report.entries.append(DiffEntry(metric, labels, cls, va, vb, ok=ok))
    report.ignored = max(_count_info(a), _count_info(b))
    return report


# ------------------------------------------------------------- baseline


def ledger_baseline(
    ledger: RunLedger,
    *,
    window: int = 5,
    benchmarks: Sequence[str] | None = None,
) -> dict[str, Any]:
    """A watchdog baseline from the rolling median of recent records.

    Takes the last ``window`` non-failed runs, derives per-benchmark
    events/sec and replay seconds from each record's throughput block,
    and medians them — the shape matches ``BENCH_machine.json`` so
    :func:`repro.core.watchdog.run_watchdog` consumes it unchanged
    (``repro watchdog --ledger-baseline``).
    """
    if window < 1:
        raise LedgerError(f"ledger_baseline: window must be >= 1, got {window}")
    recent = [r for r in ledger.records() if r.get("outcome") != "failed"]
    recent = recent[len(recent) - min(window, len(recent)):]
    eps_series: dict[str, list[float]] = {}
    sec_series: dict[str, list[float]] = {}
    for record in recent:
        for bench, t in (record.get("throughput") or {}).items():
            if benchmarks is not None and bench not in benchmarks:
                continue
            if t.get("eps"):
                eps_series.setdefault(bench, []).append(float(t["eps"]))
                sec_series.setdefault(bench, []).append(float(t.get("ns", 0.0)) / 1e9)
    benches = {
        bench: {
            "events_per_sec": median(values),
            "replay_seconds": median(sec_series[bench]),
            "runs": len(values),
        }
        for bench, values in sorted(eps_series.items())
    }
    if not benches:
        raise LedgerError(
            f"ledger {ledger.root}: no replay throughput in the last "
            f"{window} run(s)"
        )
    return {
        "schema": 1,
        "source": f"ledger:{ledger.root}",
        "window": window,
        "benchmarks": benches,
    }


# ------------------------------------------------------------ rendering


def render_runs_table(entries: Sequence[Mapping[str, Any]]) -> str:
    """The ``repro runs list`` table (newest last), from index entries."""
    if not entries:
        return "ledger: no recorded runs"
    lines = [
        f"  {'run id':<24} {'recorded (UTC)':<20} {'outcome':<9} "
        f"{'cells':>5} {'dur s':>8}  benchmarks"
    ]
    for e in entries:
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.gmtime(e.get("started_at", 0.0))
        )
        benches = ",".join(e.get("benchmarks", [])) or "-"
        if len(benches) > 40:
            benches = benches[:37] + "..."
        # Accepts index entries (flat ``cells``) and full records
        # (``cells`` under ``counts``) interchangeably.
        cells = e.get("cells", (e.get("counts") or {}).get("cells", 0))
        lines.append(
            f"  {e['run_id']:<24} {stamp:<20} {e.get('outcome', '?'):<9} "
            f"{cells:>5} {e.get('duration_s', 0.0):>8.2f}  {benches}"
        )
    return "\n".join(lines)


def render_record(record: Mapping[str, Any]) -> str:
    """The ``repro runs show`` detail view for one record."""
    counts = record.get("counts") or {}
    lines = [
        f"run {record['run_id']}  [{record.get('outcome', '?')}]",
        "  recorded: "
        + time.strftime(
            "%Y-%m-%d %H:%M:%S UTC", time.gmtime(record.get("started_at", 0.0))
        )
        + f"  duration {record.get('duration_s', 0.0):.2f}s",
        f"  benchmarks: {', '.join(record.get('benchmarks', [])) or '-'}",
    ]
    if record.get("grids"):
        lines.append(f"  grids: {', '.join(record['grids'])}")
    if record.get("builds"):
        lines.append(
            "  builds: "
            + ", ".join(f"{k}={v[:12]}" for k, v in sorted(record["builds"].items()))
        )
    if record.get("scenarios"):
        lines.append(
            "  scenarios: "
            + ", ".join(
                f"{k}={v[:12]}" for k, v in sorted(record["scenarios"].items())
            )
        )
    lines.append(
        "  cells: "
        + " ".join(
            f"{k}={counts[k]}"
            for k in (
                "cells", "ok", "failed", "retries", "captures",
                "capture_hits", "replays", "replay_hits",
                "replays_sampled", "quarantined",
            )
            if k in counts
        )
    )
    throughput = record.get("throughput") or {}
    for bench, t in sorted(throughput.items()):
        if t.get("eps"):
            lines.append(
                f"  replay {bench}: {t['events']:,.0f} events, "
                f"{t['eps'] / 1e6:.1f}M ev/s"
            )
    if record.get("trace_path"):
        lines.append(f"  trace: {record['trace_path']}")
    return "\n".join(lines)
