"""Declarative sweep requests: :class:`MachineGrid` and :class:`SweepRequest`.

``Session.characterize_sweep`` grew by keyword accretion — a benchmark
id, a bare list of machine configs, then ``base_seed``, ``sampling``,
``keep_profiles`` — with the config *names* living only in whatever
parallel list the caller kept.  These dataclasses make the request a
value:

* :class:`MachineGrid` — an ordered, named set of
  :class:`~repro.machine.cost.MachineConfig` values.  Validated on
  construction (non-empty, names unique and aligned), serializable
  (``to_dict``/``from_dict`` — the CLI's ``--grid FILE`` is exactly
  this JSON), and identified by a stable :meth:`MachineGrid.cache_token`.
* :class:`SweepRequest` — the whole sweep as one validated value:
  benchmark, grid, seed, sampling plan, and the ``batched`` override
  for the one-pass multi-config replay
  (:func:`~repro.machine.batch.replay_capture_batched`).
* :class:`ReplayRequest` — the single-replay counterpart for
  ``Session.replay`` (machine/build/sampling/workload).  Not
  serializable: ``build`` and ``workload`` are live objects.

Cache identity: each swept *cell* is keyed by its full machine config
(:func:`~repro.core.cache.cache_key` hashes ``asdict(machine)``,
geometry included), so grids that contain the same config share cache
entries — batching never fragments the cache.  The request-level
:meth:`SweepRequest.cache_token` composes the grid token with the
sampling plan's :meth:`~repro.machine.sampling.SamplingPlan.cache_token`
(the part that *does* join every cell key); use it to name artifacts of
a whole sweep.  ``batched`` is deliberately excluded — batched and
per-config replay are bit-identical, so they share one identity.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..machine.cache import CacheGeometry
from ..machine.cost import MachineConfig
from .cache import payload_digest
from .registry import machine_preset, machine_preset_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.sampling import SamplingPlan
    from .workload import Workload

__all__ = ["MachineGrid", "SweepRequest", "ReplayRequest", "default_sweep_grid"]

#: ``ReplayRequest.machine`` default: "use the session engine's config"
#: (distinct from an explicit ``None``, which means the default config).
ENGINE_MACHINE: Any = object()


def _config_from_dict(data: Mapping[str, Any]) -> MachineConfig:
    kwargs = dict(data)
    geometry = kwargs.pop("geometry", None)
    if geometry is not None:
        kwargs["geometry"] = CacheGeometry.from_dict(geometry)
    return MachineConfig(**kwargs)


@dataclass(frozen=True)
class MachineGrid:
    """An ordered, named set of machine configurations.

    ``names[i]`` labels ``machines[i]``; both orders are preserved
    everywhere downstream (``SweepResult.config_names``,
    ``profile_for``), so a grid defines the sweep's stable config
    ordering.  ``None`` machines normalize to the default config.
    """

    names: tuple[str, ...]
    machines: tuple[MachineConfig, ...]

    def __post_init__(self) -> None:
        names = tuple(self.names)
        machines = tuple(
            m if m is not None else MachineConfig() for m in self.machines
        )
        object.__setattr__(self, "names", names)
        object.__setattr__(self, "machines", machines)
        if not names:
            raise ValueError("MachineGrid: need at least one config")
        if len(names) != len(machines):
            raise ValueError(
                f"MachineGrid: {len(names)} names for {len(machines)} machines"
            )
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"MachineGrid: duplicate config names {dupes}")
        for name, m in zip(names, machines):
            if not isinstance(name, str) or not name:
                raise ValueError(f"MachineGrid: config name {name!r} must be a non-empty string")
            if not isinstance(m, MachineConfig):
                raise ValueError(
                    f"MachineGrid: {name}: expected a MachineConfig, got {type(m).__name__}"
                )

    def __len__(self) -> int:
        return len(self.names)

    def __getitem__(self, name: str) -> MachineConfig:
        try:
            return self.machines[self.names.index(name)]
        except ValueError:
            raise KeyError(
                f"MachineGrid: no config named {name!r}; have {list(self.names)}"
            ) from None

    @classmethod
    def from_presets(cls, *names: str) -> "MachineGrid":
        """A grid of registered presets; ``"default"`` means the baseline.

        Names resolve through the scenario registry, so plugin-provided
        machine configs work here too; with no arguments the grid spans
        every registered preset.  Unknown names raise
        :class:`~repro.core.errors.UnknownScenarioError`.
        """
        if not names:
            names = tuple(machine_preset_names())
        machines = tuple(
            MachineConfig() if n == "default" else machine_preset(n) for n in names
        )
        return cls(names=tuple(names), machines=machines)

    @classmethod
    def from_machines(
        cls,
        machines: "Sequence[MachineConfig | None]",
        names: "Sequence[str] | None" = None,
    ) -> "MachineGrid":
        """Wrap a bare config list, auto-naming ``cfg0..cfgN-1`` if unnamed."""
        if names is None:
            names = tuple(f"cfg{i}" for i in range(len(machines)))
        return cls(names=tuple(names), machines=tuple(machines))

    def to_dict(self) -> dict[str, Any]:
        return {
            "configs": [
                {"name": n, **asdict(m)} for n, m in zip(self.names, self.machines)
            ]
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MachineGrid":
        rows = data.get("configs")
        if not isinstance(rows, list) or not rows:
            raise ValueError("MachineGrid.from_dict: need a non-empty 'configs' list")
        names, machines = [], []
        for row in rows:
            row = dict(row)
            name = row.pop("name", None)
            if not name:
                raise ValueError("MachineGrid.from_dict: every config needs a 'name'")
            names.append(name)
            machines.append(_config_from_dict(row))
        return cls(names=tuple(names), machines=tuple(machines))

    def cache_token(self) -> str:
        """Stable identity of this grid (names + full config contents)."""
        digest = payload_digest(
            [(n, asdict(m)) for n, m in zip(self.names, self.machines)]
        )
        return f"grid.{len(self)}.{digest[:12]}"


@dataclass(frozen=True)
class SweepRequest:
    """One machine-config sweep as a validated, serializable value.

    ``batched=None`` (the default) lets the engine choose: workloads
    with two or more pending exact replays take the one-pass batched
    kernel, everything else replays per config.  ``False`` forces the
    per-config path; ``True`` documents intent but still falls back
    where batching is impossible (sampled replay, a single config) —
    results are bit-identical either way.
    """

    benchmark: str
    grid: MachineGrid
    base_seed: int = 0
    keep_profiles: bool = False
    sampling: "SamplingPlan | None" = None
    batched: bool | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.benchmark, str) or not self.benchmark:
            raise ValueError("SweepRequest: benchmark must be a non-empty id")
        if not isinstance(self.grid, MachineGrid):
            raise ValueError(
                "SweepRequest: grid must be a MachineGrid "
                f"(got {type(self.grid).__name__})"
            )
        if not isinstance(self.base_seed, int) or isinstance(self.base_seed, bool):
            raise ValueError("SweepRequest: base_seed must be an int")
        if self.batched not in (None, True, False):
            raise ValueError("SweepRequest: batched must be True, False, or None")
        if self.sampling is not None and not hasattr(self.sampling, "cache_token"):
            raise ValueError("SweepRequest: sampling must be a SamplingPlan or None")

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "grid": self.grid.to_dict(),
            "base_seed": self.base_seed,
            "keep_profiles": self.keep_profiles,
            "sampling": self.sampling.to_dict() if self.sampling is not None else None,
            "batched": self.batched,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepRequest":
        sampling = data.get("sampling")
        if sampling is not None:
            from ..machine.sampling import SamplingPlan

            sampling = SamplingPlan.from_dict(sampling)
        return cls(
            benchmark=data["benchmark"],
            grid=MachineGrid.from_dict(data["grid"]),
            base_seed=int(data.get("base_seed", 0)),
            keep_profiles=bool(data.get("keep_profiles", False)),
            sampling=sampling,
            batched=data.get("batched"),
        )

    def cache_token(self) -> str:
        """Stable request identity: benchmark + grid + seed + sampling.

        ``batched`` is excluded on purpose — batched and per-config
        replay produce bit-identical profiles, so the two execution
        strategies share one cache identity (the per-cell keys they
        actually read and write are likewise strategy-blind).
        """
        token = f"sweep.{self.benchmark}.s{self.base_seed}.{self.grid.cache_token()}"
        sampling = self.sampling.cache_token() if self.sampling is not None else None
        return token if sampling is None else f"{token}.{sampling}"


@dataclass(frozen=True)
class ReplayRequest:
    """One ``Session.replay`` call as a value.

    Not serializable by design: ``build`` (an FDO build) and
    ``workload`` are live objects; a replay request describes an
    in-process call, not an artifact.
    """

    machine: Any = ENGINE_MACHINE
    workload: "Workload | None" = None
    build: Any = None
    sampling: "SamplingPlan | None" = None

    def __post_init__(self) -> None:
        if (
            self.machine is not ENGINE_MACHINE
            and self.machine is not None
            and not isinstance(self.machine, MachineConfig)
        ):
            raise ValueError(
                "ReplayRequest: machine must be a MachineConfig, None, or omitted"
            )
        if self.sampling is not None and not hasattr(self.sampling, "cache_token"):
            raise ValueError("ReplayRequest: sampling must be a SamplingPlan or None")


def default_sweep_grid() -> MachineGrid:
    """The 8-config benchmark grid shared by the sweep bench and watchdog.

    A predictor-sensitivity axis (both predictor kinds, three table
    sizes, three history depths) crossed with memory-sizing points
    (L1D capacity, LLC capacity up and down, dTLB reach) — the shape
    of sweep the characterization studies actually run.  The sizing
    points vary distinct levels of the hierarchy, so the batched path
    exercises per-level memo reuse as well as predictor-signature and
    whole-geometry grouping; line-size variation (which shares
    nothing) is covered by the sweep test grids instead.
    """
    return MachineGrid(
        names=(
            "default",
            "skylake-ish",
            "bimodal",
            "short-history",
            "small-l1",
            "big-llc",
            "small-llc",
            "small-tlb",
        ),
        machines=(
            MachineConfig(),
            MachineConfig(
                clock_ghz=4.2,
                predictor_table_bits=16,
                predictor_history_bits=14,
                mlp=6.0,
            ),
            MachineConfig(predictor="bimodal", predictor_table_bits=12),
            MachineConfig(predictor_table_bits=12, predictor_history_bits=8),
            MachineConfig(geometry=CacheGeometry(l1d_kib=16, l1d_assoc=4)),
            MachineConfig(geometry=CacheGeometry(llc_kib=16384)),
            MachineConfig(geometry=CacheGeometry(llc_kib=2048)),
            MachineConfig(geometry=CacheGeometry(dtlb_entries=32)),
        ),
    )
