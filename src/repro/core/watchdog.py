"""Perf-regression watchdog: gate fresh replay numbers on a baseline.

``BENCH_machine.json`` (written by ``benchmarks/bench_machine.py``)
records per-benchmark replay throughput and stage seconds for one
machine.  The watchdog re-measures a subset of those benchmarks with
the same best-of-N discipline, compares against the stored numbers
with a configurable relative tolerance, and renders a human-readable
diff.  ``repro watchdog`` exposes it on the command line; CI runs it
warn-only right after the bench smoke writes a fresh baseline.

Exit semantics (mirrored by the CLI):

* ``EXIT_OK`` (0)         — every checked benchmark is within tolerance;
* ``EXIT_REGRESSION`` (1) — at least one benchmark regressed;
* ``EXIT_USAGE`` (2)      — missing/invalid baseline or bad arguments.

Throughput is measured through the metrics registry itself — each
replay round runs under a fresh :func:`~repro.core.metrics.collector`
and reads back ``repro_replay_ns_total`` / ``repro_replay_events_total``
— so the gate exercises exactly the numbers the exporters publish.

``REPRO_WATCHDOG_INJECT_SLOWDOWN=<factor>`` divides every measured
throughput by ``<factor>`` before comparison.  It exists so tests and
CI can validate the *gate* (a deterministic 2x regression must exit
nonzero) without needing a genuinely slow machine.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from . import metrics
from .errors import ReproError

__all__ = [
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_USAGE",
    "WatchdogError",
    "BenchmarkCheck",
    "WatchdogReport",
    "load_baseline",
    "measure_replay",
    "run_watchdog",
]

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2

#: Test/CI hook: divide measured throughput by this factor (>1 slows).
_INJECT_ENV = "REPRO_WATCHDOG_INJECT_SLOWDOWN"


class WatchdogError(ReproError):
    """Unusable baseline or arguments (maps to ``EXIT_USAGE``)."""


@dataclass(frozen=True)
class BenchmarkCheck:
    """One benchmark's fresh-vs-baseline comparison."""

    benchmark: str
    workload: str
    baseline_eps: float
    measured_eps: float
    baseline_replay_s: float
    measured_replay_s: float

    @property
    def eps_ratio(self) -> float:
        """measured / baseline throughput; <1 means slower than baseline."""
        return self.measured_eps / self.baseline_eps if self.baseline_eps else 0.0

    def regressed(self, tolerance: float) -> bool:
        return self.eps_ratio < 1.0 - tolerance


@dataclass
class WatchdogReport:
    """Everything one watchdog invocation decided, renderable as a diff."""

    baseline_path: Path
    tolerance: float
    rounds: int
    checks: list[BenchmarkCheck] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    injected_slowdown: float = 1.0

    @property
    def regressions(self) -> list[BenchmarkCheck]:
        return [c for c in self.checks if c.regressed(self.tolerance)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return EXIT_OK if self.ok else EXIT_REGRESSION

    def render(self) -> str:
        """The human-readable diff the CLI prints."""
        lines = [
            f"watchdog: baseline {self.baseline_path} "
            f"(tolerance {self.tolerance:.0%}, best of {self.rounds})"
        ]
        if self.injected_slowdown != 1.0:
            lines.append(
                f"watchdog: injected slowdown x{self.injected_slowdown:g} "
                f"({_INJECT_ENV})"
            )
        header = (
            f"  {'benchmark':<16} {'baseline ev/s':>14} {'measured ev/s':>14} "
            f"{'ratio':>7} {'replay s (base/now)':>21}  verdict"
        )
        lines.append(header)
        for c in self.checks:
            verdict = "REGRESSED" if c.regressed(self.tolerance) else "ok"
            lines.append(
                f"  {c.benchmark:<16} {c.baseline_eps:>14,.0f} "
                f"{c.measured_eps:>14,.0f} {c.eps_ratio:>6.2f}x "
                f"{c.baseline_replay_s:>10.4f}/{c.measured_replay_s:<10.4f} {verdict}"
            )
        for name in self.skipped:
            lines.append(f"  {name:<16} (not in baseline; skipped)")
        n_reg = len(self.regressions)
        if n_reg:
            worst = min(self.checks, key=lambda c: c.eps_ratio)
            lines.append(
                f"watchdog: {n_reg}/{len(self.checks)} benchmark(s) below "
                f"{1.0 - self.tolerance:.2f}x of baseline "
                f"(worst: {worst.benchmark} at {worst.eps_ratio:.2f}x)"
            )
        else:
            lines.append(
                f"watchdog: all {len(self.checks)} benchmark(s) within tolerance"
            )
        return "\n".join(lines)


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Parse a ``BENCH_machine.json`` baseline; raises :class:`WatchdogError`.

    Any way the file can be unusable — missing, unreadable, not JSON,
    wrong schema, or empty of per-benchmark rows — maps to the same
    exception so the CLI can report one line and exit ``EXIT_USAGE``.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise WatchdogError(f"baseline {path}: {exc.strerror or exc}") from exc
    try:
        data = json.loads(raw)
    except ValueError as exc:
        raise WatchdogError(f"baseline {path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or data.get("schema") != 1:
        raise WatchdogError(
            f"baseline {path}: unsupported schema {data.get('schema')!r}"
            if isinstance(data, dict)
            else f"baseline {path}: expected a JSON object"
        )
    benches = data.get("benchmarks")
    if not isinstance(benches, dict) or not benches:
        raise WatchdogError(f"baseline {path}: no per-benchmark rows")
    for bid, row in benches.items():
        if "events_per_sec" not in row:
            raise WatchdogError(f"baseline {path}: {bid} has no events_per_sec")
    return data


def measure_replay(
    benchmark_id: str,
    workload_name: str | None = None,
    *,
    rounds: int = 3,
) -> tuple[str, int, int, float]:
    """Capture once, replay best-of-``rounds``.

    Returns ``(workload_name, events, best_replay_ns, events_per_sec)``.
    Each round replays under a fresh registry collector and reads the
    ``repro_replay_*`` counters back out of it, so the watchdog measures
    the same numbers the Prometheus exporter publishes.
    """
    from ..machine.capture import capture_execution, replay_capture
    from .suite import alberta_workloads, get_benchmark

    workloads = alberta_workloads(benchmark_id)
    if workload_name is None:
        workload = next(
            (w for w in workloads if w.name.endswith(".refrate")), workloads[0]
        )
    else:
        match = [w for w in workloads if w.name == workload_name]
        if not match:
            raise WatchdogError(
                f"{benchmark_id}: no workload named {workload_name!r}"
            )
        workload = match[0]

    capture = capture_execution(get_benchmark(benchmark_id), workload)
    best_ns: int | None = None
    for _ in range(max(1, rounds)):
        reg = metrics.MetricsRegistry()
        with metrics.collector(reg):
            replay_capture(capture)
        ns = reg.value(metrics.REPLAY_NS_TOTAL, benchmark=benchmark_id)
        assert isinstance(ns, int)
        best_ns = ns if best_ns is None else min(best_ns, ns)
    assert best_ns is not None
    eps = capture.n_events / (best_ns / 1e9)
    return workload.name, capture.n_events, best_ns, eps


def _injected_slowdown() -> float:
    raw = os.environ.get(_INJECT_ENV, "").strip()
    if not raw:
        return 1.0
    try:
        factor = float(raw)
    except ValueError as exc:
        raise WatchdogError(f"{_INJECT_ENV}={raw!r}: not a number") from exc
    if factor <= 0:
        raise WatchdogError(f"{_INJECT_ENV}={raw!r}: must be > 0")
    return factor


def run_watchdog(
    baseline_path: str | Path,
    benchmarks: "list[str] | None" = None,
    *,
    tolerance: float = 0.25,
    rounds: int = 3,
) -> WatchdogReport:
    """Measure and compare; raises :class:`WatchdogError` on usage problems.

    ``benchmarks=None`` checks every benchmark in the baseline.  Named
    benchmarks missing from the baseline are listed as skipped rather
    than failing the gate — a new benchmark has no number to regress
    against.
    """
    if not 0.0 <= tolerance < 1.0:
        raise WatchdogError(f"tolerance {tolerance} must be in [0, 1)")
    baseline = load_baseline(baseline_path)
    rows: Mapping[str, Any] = baseline["benchmarks"]
    ids = list(rows) if benchmarks is None else list(benchmarks)
    slowdown = _injected_slowdown()
    report = WatchdogReport(
        baseline_path=Path(baseline_path),
        tolerance=tolerance,
        rounds=rounds,
        injected_slowdown=slowdown,
    )
    for bid in ids:
        row = rows.get(bid)
        if row is None:
            report.skipped.append(bid)
            continue
        workload, _events, best_ns, eps = measure_replay(
            bid, row.get("workload"), rounds=rounds
        )
        report.checks.append(
            BenchmarkCheck(
                benchmark=bid,
                workload=workload,
                baseline_eps=float(row["events_per_sec"]),
                measured_eps=eps / slowdown,
                baseline_replay_s=float(row.get("replay_seconds", 0.0)),
                measured_replay_s=best_ns / 1e9 * slowdown,
            )
        )
    if not report.checks:
        raise WatchdogError(
            f"baseline {baseline_path}: none of {ids} present in baseline"
        )
    return report
