"""Perf-regression watchdog: gate fresh replay numbers on a baseline.

``BENCH_machine.json`` (written by ``benchmarks/bench_machine.py``)
records per-benchmark replay throughput and stage seconds for one
machine.  The watchdog re-measures a subset of those benchmarks with
the same best-of-N discipline, compares against the stored numbers
with a configurable relative tolerance, and renders a human-readable
diff.  ``repro watchdog`` exposes it on the command line; CI runs it
warn-only right after the bench smoke writes a fresh baseline.

Exit semantics (mirrored by the CLI):

* ``EXIT_OK`` (0)         — every checked benchmark is within tolerance;
* ``EXIT_REGRESSION`` (1) — at least one benchmark regressed;
* ``EXIT_USAGE`` (2)      — missing/invalid baseline or bad arguments.

Throughput is measured through the metrics registry itself — each
replay round runs under a fresh :func:`~repro.core.metrics.collector`
and reads back ``repro_replay_ns_total`` / ``repro_replay_events_total``
— so the gate exercises exactly the numbers the exporters publish.

``REPRO_WATCHDOG_INJECT_SLOWDOWN=<factor>`` divides every measured
throughput by ``<factor>`` before comparison.  It exists so tests and
CI can validate the *gate* (a deterministic 2x regression must exit
nonzero) without needing a genuinely slow machine.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from . import metrics
from .errors import ReproError

__all__ = [
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_USAGE",
    "WatchdogError",
    "BenchmarkCheck",
    "SamplingCheck",
    "SweepCheck",
    "WatchdogReport",
    "load_baseline",
    "load_sampling_baseline",
    "load_sweep_baseline",
    "measure_replay",
    "measure_sampling",
    "measure_sweep",
    "run_watchdog",
]

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2

#: Test/CI hook: divide measured throughput by this factor (>1 slows).
_INJECT_ENV = "REPRO_WATCHDOG_INJECT_SLOWDOWN"


class WatchdogError(ReproError):
    """Unusable baseline or arguments (maps to ``EXIT_USAGE``)."""


@dataclass(frozen=True)
class BenchmarkCheck:
    """One benchmark's fresh-vs-baseline comparison."""

    benchmark: str
    workload: str
    baseline_eps: float
    measured_eps: float
    baseline_replay_s: float
    measured_replay_s: float

    @property
    def eps_ratio(self) -> float:
        """measured / baseline throughput; <1 means slower than baseline."""
        return self.measured_eps / self.baseline_eps if self.baseline_eps else 0.0

    def regressed(self, tolerance: float) -> bool:
        return self.eps_ratio < 1.0 - tolerance


@dataclass(frozen=True)
class SamplingCheck:
    """One benchmark's sampled-replay accuracy vs a BENCH_sampling baseline.

    Warn-only: sampled replay is deterministic given a capture, so a
    drift in either number means the estimator changed — worth a look,
    never worth failing a throughput gate over.
    """

    benchmark: str
    workload: str
    baseline_error: float
    measured_error: float
    baseline_ratio: float
    measured_ratio: float

    #: Hard accuracy/speedup bounds from the golden acceptance suite.
    MAX_ERROR = 0.02
    MIN_RATIO = 10.0

    @property
    def warnings(self) -> list[str]:
        out = []
        if self.measured_error > self.MAX_ERROR:
            out.append(f"error {self.measured_error:.4f} > bound {self.MAX_ERROR}")
        elif self.measured_error > self.baseline_error + 1e-4:
            out.append(
                f"error drifted {self.baseline_error:.4f} -> "
                f"{self.measured_error:.4f}"
            )
        if self.measured_ratio < self.MIN_RATIO:
            out.append(f"event ratio {self.measured_ratio:.1f}x < bound {self.MIN_RATIO:.0f}x")
        elif self.measured_ratio < self.baseline_ratio * 0.99:
            out.append(
                f"event ratio drifted {self.baseline_ratio:.1f}x -> "
                f"{self.measured_ratio:.1f}x"
            )
        return out


@dataclass(frozen=True)
class SweepCheck:
    """Batched-sweep speedup vs the ``sweep_batched`` baseline entry.

    Warn-only, same policy as :class:`SamplingCheck`: the batched and
    per-config paths are bit-identical, so this only watches whether
    the one-pass kernel keeps paying for itself — a slowdown is worth a
    look, never worth failing a throughput gate over.
    """

    benchmark: str
    workload: str
    configs: int
    baseline_speedup: float
    measured_speedup: float

    #: Acceptance bound: an N-config sweep must beat per-config replay
    #: by at least this factor on the standard 8-config grid.
    MIN_SPEEDUP = 3.0

    @property
    def warnings(self) -> list[str]:
        out = []
        if self.measured_speedup < self.MIN_SPEEDUP:
            out.append(
                f"speedup {self.measured_speedup:.2f}x < bound "
                f"{self.MIN_SPEEDUP:.0f}x"
            )
        elif self.measured_speedup < self.baseline_speedup * 0.8:
            out.append(
                f"speedup drifted {self.baseline_speedup:.2f}x -> "
                f"{self.measured_speedup:.2f}x"
            )
        return out


@dataclass
class WatchdogReport:
    """Everything one watchdog invocation decided, renderable as a diff."""

    baseline_path: Path
    tolerance: float
    rounds: int
    checks: list[BenchmarkCheck] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    injected_slowdown: float = 1.0
    sampling_path: Path | None = None
    sampling_checks: list[SamplingCheck] = field(default_factory=list)
    sweep_path: Path | None = None
    sweep_checks: list[SweepCheck] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchmarkCheck]:
        return [c for c in self.checks if c.regressed(self.tolerance)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return EXIT_OK if self.ok else EXIT_REGRESSION

    def to_dict(self) -> dict[str, Any]:
        """The machine-readable report for ``repro watchdog --json``."""
        from dataclasses import asdict

        return {
            "baseline": str(self.baseline_path),
            "tolerance": self.tolerance,
            "rounds": self.rounds,
            "injected_slowdown": self.injected_slowdown,
            "ok": self.ok,
            "exit_code": self.exit_code,
            "checks": [
                {
                    **asdict(c),
                    "eps_ratio": c.eps_ratio,
                    "regressed": c.regressed(self.tolerance),
                }
                for c in self.checks
            ],
            "skipped": list(self.skipped),
            "sampling_checks": [
                {**asdict(c), "warnings": c.warnings} for c in self.sampling_checks
            ],
            "sweep_checks": [
                {**asdict(c), "warnings": c.warnings} for c in self.sweep_checks
            ],
        }

    def render(self) -> str:
        """The human-readable diff the CLI prints."""
        lines = [
            f"watchdog: baseline {self.baseline_path} "
            f"(tolerance {self.tolerance:.0%}, best of {self.rounds})"
        ]
        if self.injected_slowdown != 1.0:
            lines.append(
                f"watchdog: injected slowdown x{self.injected_slowdown:g} "
                f"({_INJECT_ENV})"
            )
        header = (
            f"  {'benchmark':<16} {'baseline ev/s':>14} {'measured ev/s':>14} "
            f"{'ratio':>7} {'replay s (base/now)':>21}  verdict"
        )
        lines.append(header)
        for c in self.checks:
            verdict = "REGRESSED" if c.regressed(self.tolerance) else "ok"
            lines.append(
                f"  {c.benchmark:<16} {c.baseline_eps:>14,.0f} "
                f"{c.measured_eps:>14,.0f} {c.eps_ratio:>6.2f}x "
                f"{c.baseline_replay_s:>10.4f}/{c.measured_replay_s:<10.4f} {verdict}"
            )
        for name in self.skipped:
            lines.append(f"  {name:<16} (not in baseline; skipped)")
        n_reg = len(self.regressions)
        if n_reg:
            worst = min(self.checks, key=lambda c: c.eps_ratio)
            lines.append(
                f"watchdog: {n_reg}/{len(self.checks)} benchmark(s) below "
                f"{1.0 - self.tolerance:.2f}x of baseline "
                f"(worst: {worst.benchmark} at {worst.eps_ratio:.2f}x)"
            )
        else:
            lines.append(
                f"watchdog: all {len(self.checks)} benchmark(s) within tolerance"
            )
        if self.sampling_checks:
            lines.append(
                f"sampling: baseline {self.sampling_path} (warn-only)"
            )
            lines.append(
                f"  {'benchmark':<16} {'error (base/now)':>18} "
                f"{'ratio (base/now)':>18}  verdict"
            )
            warned = 0
            for sc in self.sampling_checks:
                warns = sc.warnings
                warned += bool(warns)
                verdict = "; ".join(warns) if warns else "ok"
                ratios = f"{sc.baseline_ratio:.1f}x/{sc.measured_ratio:.1f}x"
                lines.append(
                    f"  {sc.benchmark:<16} "
                    f"{sc.baseline_error:>8.4f}/{sc.measured_error:<9.4f} "
                    f"{ratios:>18}  {verdict}"
                )
            lines.append(
                f"sampling: {warned}/{len(self.sampling_checks)} benchmark(s) "
                f"drifted (warn-only, does not gate)"
                if warned
                else f"sampling: all {len(self.sampling_checks)} benchmark(s) stable"
            )
        if self.sweep_checks:
            lines.append(f"sweep: baseline {self.sweep_path} (warn-only)")
            lines.append(
                f"  {'benchmark':<16} {'configs':>7} "
                f"{'speedup (base/now)':>19}  verdict"
            )
            warned = 0
            for wc in self.sweep_checks:
                warns = wc.warnings
                warned += bool(warns)
                verdict = "; ".join(warns) if warns else "ok"
                speeds = f"{wc.baseline_speedup:.2f}x/{wc.measured_speedup:.2f}x"
                lines.append(
                    f"  {wc.benchmark:<16} {wc.configs:>7} {speeds:>19}  {verdict}"
                )
            lines.append(
                f"sweep: {warned}/{len(self.sweep_checks)} sweep(s) "
                f"drifted (warn-only, does not gate)"
                if warned
                else f"sweep: all {len(self.sweep_checks)} sweep(s) stable"
            )
        return "\n".join(lines)


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Parse a ``BENCH_machine.json`` baseline; raises :class:`WatchdogError`.

    Any way the file can be unusable — missing, unreadable, not JSON,
    wrong schema, or empty of per-benchmark rows — maps to the same
    exception so the CLI can report one line and exit ``EXIT_USAGE``.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise WatchdogError(f"baseline {path}: {exc.strerror or exc}") from exc
    try:
        data = json.loads(raw)
    except ValueError as exc:
        raise WatchdogError(f"baseline {path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or data.get("schema") != 1:
        raise WatchdogError(
            f"baseline {path}: unsupported schema {data.get('schema')!r}"
            if isinstance(data, dict)
            else f"baseline {path}: expected a JSON object"
        )
    benches = data.get("benchmarks")
    if not isinstance(benches, dict) or not benches:
        raise WatchdogError(f"baseline {path}: no per-benchmark rows")
    for bid, row in benches.items():
        if "events_per_sec" not in row:
            raise WatchdogError(f"baseline {path}: {bid} has no events_per_sec")
    return data


def load_sampling_baseline(path: str | Path) -> dict[str, Any]:
    """Parse a ``BENCH_sampling.json`` baseline; raises :class:`WatchdogError`.

    Same failure policy as :func:`load_baseline`: every unusable-file
    mode maps to one exception so the CLI exits ``EXIT_USAGE``.  The
    schema additionally carries the :class:`~repro.machine.sampling.SamplingPlan`
    dict the numbers were recorded under.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise WatchdogError(f"sampling baseline {path}: {exc.strerror or exc}") from exc
    try:
        data = json.loads(raw)
    except ValueError as exc:
        raise WatchdogError(
            f"sampling baseline {path}: not valid JSON ({exc})"
        ) from exc
    if not isinstance(data, dict) or data.get("schema") != 1:
        raise WatchdogError(
            f"sampling baseline {path}: unsupported schema "
            f"{data.get('schema')!r}"
            if isinstance(data, dict)
            else f"sampling baseline {path}: expected a JSON object"
        )
    if not isinstance(data.get("plan"), dict):
        raise WatchdogError(f"sampling baseline {path}: no sampling plan")
    benches = data.get("benchmarks")
    if not isinstance(benches, dict) or not benches:
        raise WatchdogError(f"sampling baseline {path}: no per-benchmark rows")
    for bid, row in benches.items():
        for key in ("max_topdown_error", "event_ratio"):
            if key not in row:
                raise WatchdogError(f"sampling baseline {path}: {bid} has no {key}")
    return data


def load_sweep_baseline(path: str | Path) -> dict[str, Any]:
    """Parse the ``sweep_batched`` entry of a ``BENCH_machine.json``.

    Same failure policy as :func:`load_baseline`; additionally requires
    the top-level ``sweep_batched`` object written by
    ``benchmarks/bench_machine.py::test_sweep_batched_throughput``.
    """
    data = load_baseline(path)
    sweep = data.get("sweep_batched")
    if not isinstance(sweep, dict):
        raise WatchdogError(
            f"baseline {path}: no sweep_batched entry (re-run "
            f"benchmarks/bench_machine.py to record one)"
        )
    for key in ("benchmark", "configs", "speedup"):
        if key not in sweep:
            raise WatchdogError(f"baseline {path}: sweep_batched has no {key}")
    return sweep


def measure_sweep(
    benchmark_id: str,
    workload_name: str | None = None,
    *,
    grid: "Any | None" = None,
    rounds: int = 3,
) -> tuple[str, int, float]:
    """Capture once, time batched vs per-config replay over a grid.

    Returns ``(workload_name, n_configs, speedup)`` where ``speedup``
    is best-of-``rounds`` per-config wall time divided by
    best-of-``rounds`` batched wall time for the same config set
    (:func:`~repro.core.sweep.default_sweep_grid` unless ``grid`` is
    given).  Both paths produce bit-identical profiles; only the clock
    differs.
    """
    import time

    from ..machine.batch import replay_capture_batched
    from ..machine.capture import capture_execution, replay_capture
    from .registry import alberta_workloads, get_benchmark
    from .sweep import default_sweep_grid

    workloads = alberta_workloads(benchmark_id)
    if workload_name is None:
        workload = next(
            (w for w in workloads if w.name.endswith(".refrate")), workloads[0]
        )
    else:
        match = [w for w in workloads if w.name == workload_name]
        if not match:
            raise WatchdogError(
                f"{benchmark_id}: no workload named {workload_name!r}"
            )
        workload = match[0]

    machines = list((grid or default_sweep_grid()).machines)
    capture = capture_execution(get_benchmark(benchmark_id), workload)
    best_single = best_batched = None
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        for m in machines:
            replay_capture(capture, machine=m)
        single_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        replay_capture_batched(capture, machines)
        batched_s = time.perf_counter() - t0
        best_single = single_s if best_single is None else min(best_single, single_s)
        best_batched = batched_s if best_batched is None else min(best_batched, batched_s)
    assert best_single is not None and best_batched is not None
    return workload.name, len(machines), best_single / best_batched


def measure_sampling(
    benchmark_id: str,
    workload_name: str | None = None,
    *,
    plan: "Any | None" = None,
) -> tuple[str, float, float]:
    """Capture once, replay exact + sampled, compare top-down fractions.

    Returns ``(workload_name, max_topdown_error, event_ratio)``.  Both
    replays are deterministic, so no best-of rounds are needed — one
    pair per benchmark pins the estimator's accuracy exactly.
    """
    from ..machine.capture import capture_execution, replay_capture
    from ..machine.sampling import SamplingPlan
    from .registry import alberta_workloads, get_benchmark
    from .topdown import CATEGORIES

    workloads = alberta_workloads(benchmark_id)
    if workload_name is None:
        workload = next(
            (w for w in workloads if w.name.endswith(".refrate")), workloads[0]
        )
    else:
        match = [w for w in workloads if w.name == workload_name]
        if not match:
            raise WatchdogError(
                f"{benchmark_id}: no workload named {workload_name!r}"
            )
        workload = match[0]

    capture = capture_execution(get_benchmark(benchmark_id), workload)
    exact = replay_capture(capture)
    sampled = replay_capture(capture, sampling=plan or SamplingPlan())
    error = max(
        abs(getattr(sampled.report.topdown, c) - getattr(exact.report.topdown, c))
        for c in CATEGORIES
    )
    return workload.name, error, sampled.sampling.event_ratio


def measure_replay(
    benchmark_id: str,
    workload_name: str | None = None,
    *,
    rounds: int = 3,
) -> tuple[str, int, int, float]:
    """Capture once, replay best-of-``rounds``.

    Returns ``(workload_name, events, best_replay_ns, events_per_sec)``.
    Each round replays under a fresh registry collector and reads the
    ``repro_replay_*`` counters back out of it, so the watchdog measures
    the same numbers the Prometheus exporter publishes.
    """
    from ..machine.capture import capture_execution, replay_capture
    from .registry import alberta_workloads, get_benchmark

    workloads = alberta_workloads(benchmark_id)
    if workload_name is None:
        workload = next(
            (w for w in workloads if w.name.endswith(".refrate")), workloads[0]
        )
    else:
        match = [w for w in workloads if w.name == workload_name]
        if not match:
            raise WatchdogError(
                f"{benchmark_id}: no workload named {workload_name!r}"
            )
        workload = match[0]

    capture = capture_execution(get_benchmark(benchmark_id), workload)
    best_ns: int | None = None
    for _ in range(max(1, rounds)):
        reg = metrics.MetricsRegistry()
        with metrics.collector(reg):
            replay_capture(capture)
        ns = reg.value(metrics.REPLAY_NS_TOTAL, benchmark=benchmark_id)
        assert isinstance(ns, int)
        best_ns = ns if best_ns is None else min(best_ns, ns)
    assert best_ns is not None
    eps = capture.n_events / (best_ns / 1e9)
    return workload.name, capture.n_events, best_ns, eps


def _injected_slowdown() -> float:
    raw = os.environ.get(_INJECT_ENV, "").strip()
    if not raw:
        return 1.0
    try:
        factor = float(raw)
    except ValueError as exc:
        raise WatchdogError(f"{_INJECT_ENV}={raw!r}: not a number") from exc
    if factor <= 0:
        raise WatchdogError(f"{_INJECT_ENV}={raw!r}: must be > 0")
    return factor


def run_watchdog(
    baseline_path: "str | Path | None" = None,
    benchmarks: "list[str] | None" = None,
    *,
    tolerance: float = 0.25,
    rounds: int = 3,
    sampling_baseline: "str | Path | None" = None,
    sweep_baseline: "str | Path | None" = None,
    ledger: "str | Path | None" = None,
    ledger_window: int = 5,
) -> WatchdogReport:
    """Measure and compare; raises :class:`WatchdogError` on usage problems.

    ``benchmarks=None`` checks every benchmark in the baseline.  Named
    benchmarks missing from the baseline are listed as skipped rather
    than failing the gate — a new benchmark has no number to regress
    against.  ``sampling_baseline`` adds warn-only sampled-replay
    accuracy checks against a ``BENCH_sampling.json``; sampling drift
    never flips the exit code (an unusable sampling baseline still
    raises, mirroring ``--baseline``).  ``sweep_baseline`` adds a
    warn-only batched-sweep speedup check against the ``sweep_batched``
    entry of a ``BENCH_machine.json`` (typically the same file as
    ``--baseline``), same policy.

    ``ledger`` replaces the file baseline with a rolling-median one
    derived from the last ``ledger_window`` recorded runs in that
    ledger directory (``repro watchdog --ledger-baseline``) — exactly
    one of ``baseline_path`` / ``ledger`` must be given.
    """
    if not 0.0 <= tolerance < 1.0:
        raise WatchdogError(f"tolerance {tolerance} must be in [0, 1)")
    if (baseline_path is None) == (ledger is None):
        raise WatchdogError(
            "exactly one of a baseline file or a ledger directory is required"
        )
    if ledger is not None:
        from .ledger import LedgerError, RunLedger, ledger_baseline

        try:
            baseline = ledger_baseline(RunLedger(ledger), window=ledger_window)
        except LedgerError as exc:
            raise WatchdogError(str(exc)) from exc
        baseline_path = Path(ledger)
    else:
        baseline = load_baseline(baseline_path)
    rows: Mapping[str, Any] = baseline["benchmarks"]
    ids = list(rows) if benchmarks is None else list(benchmarks)
    slowdown = _injected_slowdown()
    report = WatchdogReport(
        baseline_path=Path(baseline_path),
        tolerance=tolerance,
        rounds=rounds,
        injected_slowdown=slowdown,
        sampling_path=Path(sampling_baseline) if sampling_baseline else None,
        sweep_path=Path(sweep_baseline) if sweep_baseline else None,
    )
    for bid in ids:
        row = rows.get(bid)
        if row is None:
            report.skipped.append(bid)
            continue
        workload, _events, best_ns, eps = measure_replay(
            bid, row.get("workload"), rounds=rounds
        )
        report.checks.append(
            BenchmarkCheck(
                benchmark=bid,
                workload=workload,
                baseline_eps=float(row["events_per_sec"]),
                measured_eps=eps / slowdown,
                baseline_replay_s=float(row.get("replay_seconds", 0.0)),
                measured_replay_s=best_ns / 1e9 * slowdown,
            )
        )
    if not report.checks:
        raise WatchdogError(
            f"baseline {baseline_path}: none of {ids} present in baseline"
        )
    if sampling_baseline is not None:
        from ..machine.sampling import SamplingPlan

        sdata = load_sampling_baseline(sampling_baseline)
        plan = SamplingPlan.from_dict(sdata["plan"])
        srows: Mapping[str, Any] = sdata["benchmarks"]
        sids = [bid for bid in ids if bid in srows] or list(srows)
        for bid in sids:
            row = srows[bid]
            workload, error, ratio = measure_sampling(
                bid, row.get("workload"), plan=plan
            )
            report.sampling_checks.append(
                SamplingCheck(
                    benchmark=bid,
                    workload=workload,
                    baseline_error=float(row["max_topdown_error"]),
                    measured_error=error,
                    baseline_ratio=float(row["event_ratio"]),
                    measured_ratio=ratio,
                )
            )
    if sweep_baseline is not None:
        sweep = load_sweep_baseline(sweep_baseline)
        workload, n_configs, speedup = measure_sweep(
            sweep["benchmark"], sweep.get("workload"), rounds=rounds
        )
        report.sweep_checks.append(
            SweepCheck(
                benchmark=sweep["benchmark"],
                workload=workload,
                configs=n_configs,
                baseline_speedup=float(sweep["speedup"]),
                measured_speedup=speedup,
            )
        )
    return report
