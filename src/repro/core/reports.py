"""Per-benchmark text reports.

The Alberta Workloads ship "an extensive amount of data and analysis"
per benchmark: execution-time bar data per workload, top-down and
method-coverage summaries.  :func:`benchmark_report` renders the same
content for one :class:`~repro.core.characterize.BenchmarkCharacterization`.
"""

from __future__ import annotations

from .characterize import BenchmarkCharacterization
from .topdown import CATEGORIES

__all__ = ["benchmark_report", "execution_time_report"]


def execution_time_report(char: BenchmarkCharacterization, width: int = 40) -> str:
    """Section V-A content: per-workload execution-time bars."""
    if not char.seconds_by_workload:
        return "(no timing data)"
    peak = max(char.seconds_by_workload.values())
    lines = [f"Execution time per workload — {char.benchmark_id}"]
    for name, seconds in char.seconds_by_workload.items():
        bar = "#" * max(1, round(seconds / peak * width))
        lines.append(f"  {name:<40} {bar} {seconds:.4f}s")
    return "\n".join(lines)


def benchmark_report(char: BenchmarkCharacterization) -> str:
    """The full per-benchmark report distributed with the workloads."""
    lines = [
        "=" * 72,
        f"Alberta Workloads report — {char.benchmark_id}",
        "=" * 72,
        f"workloads: {char.n_workloads}",
        "",
        execution_time_report(char),
        "",
        "Top-down summary (Section V-B):",
    ]
    for cat in CATEGORIES:
        lines.append(
            f"  {cat:<16} mu_g={char.topdown.mu_g(cat) * 100:6.2f}%  "
            f"sigma_g={char.topdown.sigma_g(cat):5.2f}  "
            f"V={char.topdown.variation(cat):7.2f}"
        )
    lines.append(f"  mu_g(V) = {char.mu_g_v:.2f}")
    lines.append("")
    lines.append("Method coverage summary (Section V-C):")
    for method, rs in sorted(
        char.coverage.per_method.items(), key=lambda kv: -kv[1].mu_g
    ):
        lines.append(
            f"  {method:<28} mu_g={rs.mu_g:7.2f}%  sigma_g={rs.sigma_g:5.2f}"
        )
    lines.append(f"  mu_g(M) = {char.mu_g_m:.2f}")
    return "\n".join(lines)
