"""SPEC CPU 2006 -> 2017 evolution analysis (Section III of the paper).

Derives the comparative facts the paper highlights from the Table I
data: which programs persisted, which areas entered or left the suite,
and the arithmetic mean of official times per generation.
"""

from __future__ import annotations

from .spec2017 import TABLE1_ROWS, Table1Row

__all__ = [
    "mean_time_2017",
    "mean_time_2006",
    "carried_over",
    "new_in_2017",
    "dropped_after_2006",
    "evolution_summary",
]


def _rows_with(attr: str) -> list[Table1Row]:
    return [r for r in TABLE1_ROWS if getattr(r, attr) is not None]


def mean_time_2017() -> float:
    """Arithmetic mean of the 2017 official times (Table I: 517 s)."""
    rows = _rows_with("time2017")
    return sum(r.time2017 for r in rows) / len(rows)


def mean_time_2006() -> float:
    """Arithmetic mean of the 2006 official times (Table I: 405 s)."""
    rows = _rows_with("time2006")
    return sum(r.time2006 for r in rows) / len(rows)


def carried_over() -> list[Table1Row]:
    """Application areas present in both generations."""
    return [r for r in TABLE1_ROWS if r.spec2017 and r.spec2006]


def new_in_2017() -> list[Table1Row]:
    """Areas introduced in SPEC CPU 2017 (INT)."""
    return [r for r in TABLE1_ROWS if r.spec2017 and not r.spec2006]


def dropped_after_2006() -> list[Table1Row]:
    """Areas that did not make it into SPEC CPU 2017 (INT)."""
    return [r for r in TABLE1_ROWS if r.spec2006 and not r.spec2017]


#: Application areas Section III lists as no longer represented in the
#: FP suite after 2006.
FP_AREAS_DROPPED = (
    "quantum chemistry",
    "quantum physics",
    "linear programming",
    "structural mechanics",
    "speech recognition",
)

#: New FP application areas Section III lists for 2017.
FP_AREAS_NEW = (
    "optical tomography for biomedical imaging",
    "3D rendering and animation",
    "atmosphere and ocean modelling",
    "image manipulation",
    "molecular dynamics",
)


def evolution_summary() -> dict:
    """The Section III narrative as data."""
    return {
        "mean_time_2017": mean_time_2017(),
        "mean_time_2006": mean_time_2006(),
        "n_carried_over": len(carried_over()),
        "n_new_2017": len(new_in_2017()),
        "n_dropped_2006": len(dropped_after_2006()),
        "fp_areas_dropped": FP_AREAS_DROPPED,
        "fp_areas_new": FP_AREAS_NEW,
    }
