"""SPEC CPU suite metadata and 2006 -> 2017 history."""

from .history import evolution_summary, mean_time_2006, mean_time_2017
from .spec2017 import FP_2017, INT_2017, TABLE1_ROWS, BenchmarkInfo, Table1Row, info

__all__ = [
    "evolution_summary",
    "mean_time_2006",
    "mean_time_2017",
    "FP_2017",
    "INT_2017",
    "TABLE1_ROWS",
    "BenchmarkInfo",
    "Table1Row",
    "info",
]
