"""SPEC CPU 2017 suite metadata, as presented in the paper.

Static facts only: the benchmark roster, application areas, the
2006 -> 2017 lineage, and the officially submitted execution times the
paper quotes in Table I (ASUS Z170MPLUS, Intel Core i7-6700K at
4.2 GHz, 8 copies).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BenchmarkInfo", "INT_2017", "FP_2017", "info", "TABLE1_ROWS", "Table1Row"]


@dataclass(frozen=True)
class BenchmarkInfo:
    """Static metadata for one SPEC CPU 2017 benchmark."""

    benchmark_id: str
    suite: str
    area: str
    language: str
    predecessor_2006: str | None = None


INT_2017: tuple[BenchmarkInfo, ...] = (
    BenchmarkInfo("500.perlbench_r", "int", "Perl interpreter", "C", "400.perlbench"),
    BenchmarkInfo("502.gcc_r", "int", "Compiler", "C", "403.gcc"),
    BenchmarkInfo("505.mcf_r", "int", "Route planning", "C", "429.mcf"),
    BenchmarkInfo("520.omnetpp_r", "int", "Discrete event simulation", "C++", "471.omnetpp"),
    BenchmarkInfo("523.xalancbmk_r", "int", "SML to HTML conversion", "C++", "483.xalancbmk"),
    BenchmarkInfo("525.x264_r", "int", "Video compression", "C", "464.h264ref"),
    BenchmarkInfo("531.deepsjeng_r", "int", "AI: alpha-beta tree search", "C++", "458.sjeng"),
    BenchmarkInfo("541.leela_r", "int", "AI: Go game playing", "C++", "445.gobmk"),
    BenchmarkInfo("548.exchange2_r", "int", "AI: Sudoku recursive solution", "Fortran", None),
    BenchmarkInfo("557.xz_r", "int", "Data compression", "C", "401.bzip2"),
)

FP_2017: tuple[BenchmarkInfo, ...] = (
    BenchmarkInfo("507.cactuBSSN_r", "fp", "Physics: relativity", "C++/C/Fortran", None),
    BenchmarkInfo("510.parest_r", "fp", "Biomedical imaging", "C++", None),
    BenchmarkInfo("511.povray_r", "fp", "Ray tracing", "C++/C", "453.povray"),
    BenchmarkInfo("519.lbm_r", "fp", "Fluid dynamics", "C", "470.lbm"),
    BenchmarkInfo("521.wrf_r", "fp", "Weather forecasting", "Fortran/C", "481.wrf"),
    BenchmarkInfo("526.blender_r", "fp", "3D rendering and animation", "C++/C", None),
    BenchmarkInfo("544.nab_r", "fp", "Molecular dynamics", "C", None),
)


def info(benchmark_id: str) -> BenchmarkInfo:
    """Metadata for one benchmark id."""
    for entry in INT_2017 + FP_2017:
        if entry.benchmark_id == benchmark_id:
            return entry
    raise KeyError(f"unknown benchmark {benchmark_id!r}")


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I."""

    area: str
    spec2017: str | None
    spec2006: str | None
    time2017: int | None
    time2006: int | None


#: Table I of the paper, verbatim: the INT 2006 -> 2017 evolution with
#: officially submitted times (seconds).
TABLE1_ROWS: tuple[Table1Row, ...] = (
    Table1Row("Perl interpreter", "500.perlbench_r", "400.perlbench", 542, 425),
    Table1Row("Compiler", "502.gcc_r", "403.gcc", 518, 346),
    Table1Row("Route planning", "505.mcf_r", "429.mcf", 633, 333),
    Table1Row("Discrete event simulation", "520.omnetpp_r", "471.omnetpp", 787, 483),
    Table1Row("SML to HTML conversion", "523.xalancbmk_r", "483.xalancbmk", 323, 221),
    Table1Row("Video compression", "525.x264_r", "464.h264ref", 379, 575),
    Table1Row("AI: alpha-beta tree search", "531.deepsjeng_r", "458.sjeng", 373, 562),
    Table1Row("AI: Sudoku recursive solution", "548.exchange3_r", None, 498, None),
    Table1Row("Data compression", "557.xz_r", "401.bzip2", 532, 681),
    Table1Row("AI: Go game playing", "541.leela_r", "445.gobmk", 586, 506),
    Table1Row("Search Gene Sequence", None, "456.hmmer", None, 202),
    Table1Row("Physics: Quantum Computing", None, "462.libquantum", None, 65),
    Table1Row("AI: path finding algorithm", None, "473.astar", None, 461),
)
