"""Alberta workload generators, one per benchmark (Section IV)."""

from .base import WorkloadGenerator, make_rng, workload
from .blender_gen import BlenderWorkloadGenerator, check_scene
from .cactubssn_gen import CactuBssnWorkloadGenerator
from .deepsjeng_gen import DeepsjengWorkloadGenerator, synthesize_corpus
from .exchange2_gen import Exchange2WorkloadGenerator, make_seed_collection
from .gcc_gen import GccWorkloadGenerator, generate_program, one_file
from .lbm_gen import LbmWorkloadGenerator, make_obstacles
from .leela_gen import LeelaWorkloadGenerator, cull_sgf, synthesize_sgf
from .mcf_gen import McfWorkloadGenerator, build_city, build_timetable
from .nab_gen import NabWorkloadGenerator, synthesize_protein
from .omnetpp_gen import OmnetppWorkloadGenerator, topology_edges
from .parest_gen import ParestWorkloadGenerator
from .povray_gen import PovrayWorkloadGenerator
from .wrf_gen import WrfWorkloadGenerator, synthesize_event
from .x264_gen import X264WorkloadGenerator, synthesize_video
from .xalancbmk_gen import XalancbmkWorkloadGenerator, make_auction_xml, make_records_xml
from .xz_gen import XzWorkloadGenerator

__all__ = [
    "WorkloadGenerator",
    "make_rng",
    "workload",
    "BlenderWorkloadGenerator",
    "check_scene",
    "CactuBssnWorkloadGenerator",
    "DeepsjengWorkloadGenerator",
    "synthesize_corpus",
    "Exchange2WorkloadGenerator",
    "make_seed_collection",
    "GccWorkloadGenerator",
    "generate_program",
    "one_file",
    "LbmWorkloadGenerator",
    "make_obstacles",
    "LeelaWorkloadGenerator",
    "cull_sgf",
    "synthesize_sgf",
    "McfWorkloadGenerator",
    "build_city",
    "build_timetable",
    "NabWorkloadGenerator",
    "synthesize_protein",
    "OmnetppWorkloadGenerator",
    "topology_edges",
    "ParestWorkloadGenerator",
    "PovrayWorkloadGenerator",
    "WrfWorkloadGenerator",
    "synthesize_event",
    "X264WorkloadGenerator",
    "synthesize_video",
    "XalancbmkWorkloadGenerator",
    "make_auction_xml",
    "make_records_xml",
    "XzWorkloadGenerator",
]
