"""Workload generator protocol and helpers.

Section IV of the paper classifies workload provenance into five
methods (public files, derived resources, scripted downloads, fully
procedural generation, manual authoring).  Every generator here is
*procedural with a seed* — we cannot download anything — but each
module documents which provenance class the original Alberta workload
used and mirrors its parameters.

A generator produces a :class:`~repro.core.workload.WorkloadSet`; its
``alberta_set`` classmethod recreates the default set whose size
matches the per-benchmark workload count in Table II of the paper.
"""

from __future__ import annotations

import random
from typing import Any, Protocol, runtime_checkable

from ..core.workload import Workload, WorkloadSet

__all__ = ["WorkloadGenerator", "make_rng", "workload"]


def make_rng(seed: int) -> random.Random:
    """The project-wide RNG constructor: explicit seed, isolated stream."""
    return random.Random(seed)


def workload(
    benchmark: str,
    name: str,
    payload: Any,
    *,
    kind: str,
    seed: int | None = None,
    **params: Any,
) -> Workload:
    """Shorthand used by all generators to build a named workload."""
    return Workload(
        name=name,
        benchmark=benchmark,
        payload=payload,
        kind=kind,
        seed=seed,
        params=params,
    )


@runtime_checkable
class WorkloadGenerator(Protocol):
    """Protocol for per-benchmark workload generators."""

    #: The benchmark this generator targets, e.g. ``"557.xz_r"``.
    benchmark: str

    def generate(self, seed: int, **params: Any) -> Workload:
        """Produce a single workload from a seed and parameters."""
        ...

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Recreate the default Alberta-style set (Table II count)."""
        ...
