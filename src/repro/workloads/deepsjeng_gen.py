"""Workload generator for ``531.deepsjeng_r`` (Section IV-A of the paper).

The Alberta workloads draw 946 positions from the Arasan chess test
suite; a script selects N positions per workload and assigns each a ply
depth drawn from a configurable range (the paper uses 8 positions per
workload, depths 11-16).  We cannot ship Arasan's positions, so the
corpus is synthesized the way chess test corpora are born: by playing
seeded semi-random games from the initial position with the engine's
own (real) move generator and snapshotting mid-game positions.  The
paper notes the Arasan file can be swapped for any other position set;
:class:`DeepsjengWorkloadGenerator` likewise accepts a custom corpus.

Depths are scaled down (default 2-4) because the substrate engine is
interpreted Python, not C.
"""

from __future__ import annotations

from ..core.registry import register_generator
from ..benchmarks.deepsjeng import START_FEN, ChessInput, Position
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = ["DeepsjengWorkloadGenerator", "synthesize_corpus"]


def synthesize_corpus(n_positions: int = 64, seed: int = 946) -> list[str]:
    """Generate a corpus of mid-game FEN positions from seeded games.

    Each game starts from the initial position and plays uniformly
    random legal moves; a snapshot is taken between plies 10 and 40.
    Games that end early (no legal moves) restart with the next seed.
    """
    if n_positions < 1:
        raise ValueError("n_positions must be >= 1")
    rng = make_rng(seed)
    corpus: list[str] = []
    attempts = 0
    while len(corpus) < n_positions:
        attempts += 1
        if attempts > n_positions * 20:
            raise RuntimeError("corpus synthesis failed to converge")
        pos = Position.from_fen(START_FEN)
        target_ply = rng.randint(10, 40)
        ok = True
        for _ in range(target_ply):
            moves = pos.legal_moves()
            if not moves:
                ok = False
                break
            pos = pos.make_move(rng.choice(moves))
        if ok and pos.legal_moves():
            corpus.append(pos.to_fen())
    return corpus


@register_generator
class DeepsjengWorkloadGenerator:
    """Samples positions and depths, mirroring the Alberta script."""

    benchmark = "531.deepsjeng_r"

    def __init__(self, corpus: list[str] | None = None):
        self._corpus = corpus

    @property
    def corpus(self) -> list[str]:
        if self._corpus is None:
            self._corpus = synthesize_corpus()
        return self._corpus

    def generate(
        self,
        seed: int,
        *,
        positions_per_workload: int = 8,
        min_depth: int = 2,
        max_depth: int = 3,
        name: str | None = None,
    ) -> Workload:
        if positions_per_workload < 1:
            raise ValueError("positions_per_workload must be >= 1")
        if not 1 <= min_depth <= max_depth:
            raise ValueError("need 1 <= min_depth <= max_depth")
        rng = make_rng(seed)
        corpus = self.corpus
        chosen = rng.sample(corpus, min(positions_per_workload, len(corpus)))
        positions = tuple((fen, rng.randint(min_depth, max_depth)) for fen in chosen)
        return workload(
            self.benchmark,
            name or f"deepsjeng.alberta.s{seed}",
            ChessInput(positions=positions),
            kind=WorkloadKind.SCRIPTED,
            seed=seed,
            positions=positions_per_workload,
            min_depth=min_depth,
            max_depth=max_depth,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Twelve workloads as in Table II: 9 Alberta + 3 SPEC-like.

        The paper's nine Alberta workloads hold eight positions each
        with ply depths 11-16; ours hold four positions at depths 2-3
        to stay within interpreter speed.
        """
        ws = WorkloadSet(self.benchmark)
        for label, seed_off, n_pos, dmin, dmax in (
            ("deepsjeng.refrate", 1000, 4, 3, 3),
            ("deepsjeng.train", 1001, 3, 2, 3),
            ("deepsjeng.test", 1002, 2, 2, 2),
        ):
            w = self.generate(
                base_seed + seed_off,
                positions_per_workload=n_pos,
                min_depth=dmin,
                max_depth=dmax,
                name=label,
            )
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=WorkloadKind.SPEC,
                    seed=w.seed,
                    params=w.params,
                )
            )
        for i in range(9):
            ws.add(
                self.generate(
                    base_seed + i * 37,
                    positions_per_workload=4,
                    min_depth=2,
                    max_depth=3,
                    name=f"deepsjeng.alberta.{i + 1}",
                )
            )
        return ws
