"""Workload generator for ``544.nab_r`` (Section IV-B of the paper).

"The seven new workloads model forces in seven distinct proteins.  The
pdb files, which describe the protein structure, were downloaded from
the Brookhaven Protein Data Bank."  PDB downloads are unavailable
offline, so :func:`synthesize_protein` builds the structural
equivalent: a self-avoiding backbone random walk with side-chain
atoms, partial charges, and a bond topology — the quantities a pdb +
prm pair feeds the force field.
"""

from __future__ import annotations

import numpy as np

from ..core.registry import register_generator
from ..benchmarks.nab import NabInput
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = ["NabWorkloadGenerator", "synthesize_protein"]


def synthesize_protein(
    seed: int,
    *,
    n_residues: int = 40,
    compact: float = 0.5,
) -> tuple[np.ndarray, np.ndarray, tuple[tuple[int, int], ...]]:
    """Generate (positions, charges, bonds) for a synthetic protein.

    The backbone is a step-length-1.5 random walk whose turning angle
    is damped by ``compact`` (0 = extended chain, 1 = tight globule);
    each residue carries one side-chain atom bonded to the backbone.
    """
    if n_residues < 2:
        raise ValueError("n_residues must be >= 2")
    rng = make_rng(seed)
    positions: list[np.ndarray] = []
    bonds: list[tuple[int, int]] = []
    direction = np.array([1.0, 0.0, 0.0])
    pos = np.zeros(3)
    backbone_ids: list[int] = []
    for r in range(n_residues):
        positions.append(pos.copy())
        backbone_ids.append(len(positions) - 1)
        if r > 0:
            bonds.append((backbone_ids[r - 1], backbone_ids[r]))
        # side-chain atom off the backbone
        offset = np.array([rng.gauss(0, 1) for _ in range(3)])
        offset = offset / (np.linalg.norm(offset) or 1.0) * 1.4
        positions.append(pos + offset)
        bonds.append((backbone_ids[r], len(positions) - 1))
        # advance the backbone
        turn = np.array([rng.gauss(0, compact) for _ in range(3)])
        direction = direction + turn
        direction = direction / (np.linalg.norm(direction) or 1.0)
        pos = pos + direction * 1.5
    arr = np.array(positions)
    charges = np.array(
        [rng.choice([-0.5, -0.25, 0.0, 0.0, 0.25, 0.5]) for _ in range(len(positions))]
    )
    return arr, charges, tuple(bonds)


@register_generator
class NabWorkloadGenerator:
    """Synthetic protein structures (pdb/prm stand-ins)."""

    benchmark = "544.nab_r"

    def generate(
        self,
        seed: int,
        *,
        n_residues: int = 40,
        compact: float = 0.5,
        cutoff: float = 6.0,
        minimize_steps: int = 3,
        name: str | None = None,
    ) -> Workload:
        positions, charges, bonds = synthesize_protein(
            seed, n_residues=n_residues, compact=compact
        )
        payload = NabInput(
            positions=positions,
            charges=charges,
            bonds=bonds,
            cutoff=cutoff,
            minimize_steps=minimize_steps,
        )
        return workload(
            self.benchmark,
            name or f"nab.s{seed}",
            payload,
            kind=WorkloadKind.PUBLIC,
            seed=seed,
            n_residues=n_residues,
            compact=compact,
            cutoff=cutoff,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Eleven workloads as in Table II: 7 proteins + 4 SPEC-like."""
        ws = WorkloadSet(self.benchmark)
        spec = [
            (48, 0.5, "nab.refrate"),
            (32, 0.5, "nab.train"),
            (12, 0.5, "nab.test"),
            (40, 0.5, "nab.refspeed"),
        ]
        # seven "distinct proteins": size x compactness spread
        alberta = [
            (24, 0.2, "nab.alberta.1ext"),
            (24, 0.9, "nab.alberta.1glb"),
            (40, 0.35, "nab.alberta.2med"),
            (56, 0.5, "nab.alberta.3big"),
            (56, 0.95, "nab.alberta.3dense"),
            (72, 0.4, "nab.alberta.4long"),
            (36, 0.7, "nab.alberta.2fold"),
        ]
        for i, (n_res, compact, label) in enumerate(spec + alberta):
            w = self.generate(
                base_seed + i * 11 + 3, n_residues=n_res, compact=compact, name=label
            )
            kind = WorkloadKind.SPEC if i < len(spec) else WorkloadKind.PUBLIC
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=kind,
                    seed=w.seed,
                    params=w.params,
                )
            )
        return ws
