"""Workload generator for ``541.leela_r`` (Section IV-A of the paper).

The Alberta workloads are sets of Go positions from the No-Name Go
Server archive with *moves culled from the end of the game* so the
engine plays each game to completion; board size and cull count vary
between workloads.  We cannot ship NNGS games, so games are synthesized
by self-play with the substrate's own (real) rules engine, recorded as
SGF, and then culled exactly as the Alberta script does.
"""

from __future__ import annotations

from ..core.registry import register_generator
from ..benchmarks.leela import BLACK, WHITE, GoBoard, _legal_moves
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = ["LeelaWorkloadGenerator", "synthesize_sgf", "cull_sgf"]

_COORDS = "abcdefghijklmnopqrs"


def synthesize_sgf(seed: int, *, size: int = 9, n_moves: int = 30) -> str:
    """Self-play a seeded random game and record it as SGF."""
    if size not in (9, 13, 19):
        raise ValueError("size must be one of 9, 13, 19")
    rng = make_rng(seed)
    board = GoBoard(size)
    color = BLACK
    moves: list[str] = []
    for _ in range(n_moves):
        legal = _legal_moves(board, color)
        if not legal:
            break
        point = rng.choice(legal)
        board.play(point, color)
        row, col = divmod(point, size)
        prop = "B" if color == BLACK else "W"
        moves.append(f";{prop}[{_COORDS[col]}{_COORDS[row]}]")
        color = BLACK + WHITE - color
    return f"(;SZ[{size}]" + "".join(moves) + ")"


def cull_sgf(sgf: str, n_cull: int) -> str:
    """Remove the last ``n_cull`` moves from an SGF record.

    This is the Alberta script's operation: make the game incomplete so
    the engine has something to play.
    """
    if n_cull < 0:
        raise ValueError("n_cull must be >= 0")
    parts = sgf.rstrip(")").split(";")
    header = parts[0] + ";" + parts[1] if len(parts) > 1 else sgf
    moves = parts[2:]
    kept = moves[: max(0, len(moves) - n_cull)]
    return header + (";" + ";".join(kept) if kept else "") + ")"


@register_generator
class LeelaWorkloadGenerator:
    """Synthesized games, end-culled, over three board sizes."""

    benchmark = "541.leela_r"

    def generate(
        self,
        seed: int,
        *,
        games_per_workload: int = 2,
        board_size: int = 9,
        n_moves: int = 30,
        n_cull: int = 6,
        playouts_per_move: int = 8,
        max_moves_to_play: int = 6,
        name: str | None = None,
    ) -> Workload:
        from ..benchmarks.leela import GoInput

        rng = make_rng(seed)
        games = []
        for g in range(games_per_workload):
            sgf = synthesize_sgf(
                seed * 1000 + g, size=board_size, n_moves=n_moves + rng.randint(-4, 4)
            )
            games.append(cull_sgf(sgf, n_cull))
        return workload(
            self.benchmark,
            name or f"leela.alberta.s{seed}",
            GoInput(
                games=tuple(games),
                playouts_per_move=playouts_per_move,
                max_moves_to_play=max_moves_to_play,
            ),
            kind=WorkloadKind.SCRIPTED,
            seed=seed,
            games=games_per_workload,
            board_size=board_size,
            n_cull=n_cull,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Twelve workloads as in Table II: 9 Alberta + 3 SPEC-like.

        The paper's nine Alberta workloads each hold six positions with
        varying board size and cull count; ours hold two games each to
        stay within interpreter speed, varying the same knobs.
        """
        ws = WorkloadSet(self.benchmark)
        spec = [
            (2, 9, 30, 6, "leela.refrate"),
            (1, 9, 24, 5, "leela.train"),
            (1, 9, 16, 3, "leela.test"),
        ]
        alberta = [
            (2, 9, 28, 4, "leela.alberta.1"),
            (2, 9, 34, 8, "leela.alberta.2"),
            (2, 9, 40, 10, "leela.alberta.3"),
            (2, 13, 36, 6, "leela.alberta.4"),
            (2, 13, 44, 8, "leela.alberta.5"),
            (2, 13, 30, 4, "leela.alberta.6"),
            (2, 9, 22, 6, "leela.alberta.7"),
            (2, 13, 40, 10, "leela.alberta.8"),
            (2, 9, 36, 8, "leela.alberta.9"),
        ]
        for i, (games, size, n_moves, cull, label) in enumerate(spec + alberta):
            w = self.generate(
                base_seed + i * 43 + 7,
                games_per_workload=games,
                board_size=size,
                n_moves=n_moves,
                n_cull=cull,
                name=label,
            )
            kind = WorkloadKind.SPEC if i < len(spec) else WorkloadKind.SCRIPTED
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=kind,
                    seed=w.seed,
                    params=w.params,
                )
            )
        return ws
