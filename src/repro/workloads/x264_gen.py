"""Workload generator for ``525.x264_r`` (Section IV-A of the paper).

The paper's script takes a source video plus parameters (start frame,
frame count, dump interval, ...) and prepares everything a workload
needs, including one-pass and two-pass grayscale encodes.  Public-
domain HD videos are not available offline, so :func:`synthesize_video`
produces the synthetic equivalents: moving geometric shapes over a
gradient background, camera pans, optional scene cuts, and sensor
noise — the content attributes (motion magnitude, texture, cut
frequency) that drive an encoder's workload sensitivity.
"""

from __future__ import annotations

import numpy as np

from ..core.registry import register_generator
from ..benchmarks.x264 import VideoInput
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = ["X264WorkloadGenerator", "synthesize_video", "VIDEO_STYLES"]

VIDEO_STYLES = ("pan", "objects", "noisy", "cuts", "static")


def synthesize_video(
    seed: int,
    *,
    n_frames: int = 8,
    height: int = 48,
    width: int = 64,
    style: str = "objects",
) -> np.ndarray:
    """Synthetic grayscale video as a (n, h, w) uint8 array."""
    if style not in VIDEO_STYLES:
        raise ValueError(f"unknown video style {style!r}")
    rng = make_rng(seed)
    nprng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    base = ((xx * 2 + yy) % 256).astype(np.float64) * 0.5 + 64

    frames = np.empty((n_frames, height, width), dtype=np.uint8)
    # moving objects state
    objects = [
        {
            "x": rng.uniform(8, width - 16),
            "y": rng.uniform(8, height - 16),
            "vx": rng.uniform(-2, 2),
            "vy": rng.uniform(-1.5, 1.5),
            "r": rng.uniform(3, 7),
            "lum": rng.uniform(150, 240),
        }
        for _ in range(4)
    ]
    pan_x = 0.0

    for f in range(n_frames):
        img = base.copy()
        if style == "pan":
            pan_x += 1.5
            img = ((xx * 2 + yy + int(pan_x)) % 256).astype(np.float64) * 0.5 + 64
        if style in ("objects", "cuts", "noisy"):
            for obj in objects:
                obj["x"] = (obj["x"] + obj["vx"]) % width
                obj["y"] = (obj["y"] + obj["vy"]) % height
                dist2 = (xx - obj["x"]) ** 2 + (yy - obj["y"]) ** 2
                img = np.where(dist2 < obj["r"] ** 2, obj["lum"], img)
        if style == "cuts" and f and f % 4 == 0:
            # scene cut: new background and objects
            base = ((xx * rng.randint(1, 4) + yy * rng.randint(1, 3)) % 256).astype(
                np.float64
            ) * 0.5 + rng.uniform(32, 96)
            img = base.copy()
        if style == "noisy":
            img = img + nprng.normal(0, 12, size=img.shape)
        elif style != "static":
            img = img + nprng.normal(0, 2, size=img.shape)
        frames[f] = np.clip(img, 0, 255).astype(np.uint8)
    return frames


@register_generator
class X264WorkloadGenerator:
    """Synthetic videos + encode parameters, mirroring the paper script."""

    benchmark = "525.x264_r"

    def generate(
        self,
        seed: int,
        *,
        style: str = "objects",
        n_frames: int = 8,
        start_frame: int = 0,
        encode_frames: int | None = None,
        qp: int = 8,
        two_pass: bool = False,
        name: str | None = None,
    ) -> Workload:
        frames = synthesize_video(seed, n_frames=n_frames, style=style)
        payload = VideoInput(
            frames=frames,
            start_frame=start_frame,
            n_frames=encode_frames,
            qp=qp,
            two_pass=two_pass,
        )
        return workload(
            self.benchmark,
            name or f"x264.{style}.s{seed}",
            payload,
            kind=WorkloadKind.SCRIPTED,
            seed=seed,
            style=style,
            n_frames=n_frames,
            start_frame=start_frame,
            qp=qp,
            two_pass=two_pass,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Ten workloads: 3 SPEC-like + 7 Alberta content/param variants."""
        ws = WorkloadSet(self.benchmark)
        configs = [
            ("objects", 10, 0, None, 8, False, WorkloadKind.SPEC, "x264.refrate"),
            ("objects", 6, 0, None, 8, False, WorkloadKind.SPEC, "x264.train"),
            ("objects", 3, 0, None, 8, False, WorkloadKind.SPEC, "x264.test"),
            ("pan", 8, 0, None, 8, False, WorkloadKind.SCRIPTED, "x264.alberta.pan"),
            ("noisy", 8, 0, None, 8, False, WorkloadKind.SCRIPTED, "x264.alberta.noisy"),
            ("cuts", 10, 0, None, 8, False, WorkloadKind.SCRIPTED, "x264.alberta.cuts"),
            ("static", 8, 0, None, 8, False, WorkloadKind.SCRIPTED, "x264.alberta.static"),
            ("objects", 10, 3, 6, 8, False, WorkloadKind.SCRIPTED, "x264.alberta.window"),
            ("objects", 8, 0, None, 16, False, WorkloadKind.SCRIPTED, "x264.alberta.lowq"),
            ("objects", 8, 0, None, 8, True, WorkloadKind.SCRIPTED, "x264.alberta.twopass"),
        ]
        for i, (style, nf, start, enc, qp, two_pass, kind, label) in enumerate(configs):
            w = self.generate(
                base_seed + i * 41 + 3,
                style=style,
                n_frames=nf,
                start_frame=start,
                encode_frames=enc,
                qp=qp,
                two_pass=two_pass,
                name=label,
            )
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=kind,
                    seed=w.seed,
                    params=w.params,
                )
            )
        return ws
