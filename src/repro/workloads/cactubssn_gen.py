"""Workload generator for ``507.cactuBSSN_r`` (Section IV-B of the paper).

"The generation of additional workloads consists of changing
computational parameters to the solver.  These parameters are provided
in a file.  The seven new workloads were generated following
suggestions for parameter setting from the benchmark authors."

The parameters here are the solver file's knobs: grid resolution, step
count, Courant factor, Kreiss-Oliger dissipation, and the number of
evolved field components.
"""

from __future__ import annotations

from ..core.registry import register_generator
from ..benchmarks.cactubssn import CactusInput
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import workload

__all__ = ["CactuBssnWorkloadGenerator"]


@register_generator
class CactuBssnWorkloadGenerator:
    """Parameter-file variations (the paper's MANUAL provenance class)."""

    benchmark = "507.cactuBSSN_r"

    def generate(
        self,
        seed: int,
        *,
        grid: int = 14,
        steps: int = 10,
        courant: float = 0.25,
        dissipation: float = 0.01,
        n_fields: int = 3,
        name: str | None = None,
    ) -> Workload:
        payload = CactusInput(
            grid=grid,
            steps=steps,
            courant=courant,
            dissipation=dissipation,
            n_fields=n_fields,
        )
        return workload(
            self.benchmark,
            name or f"cactu.s{seed}",
            payload,
            kind=WorkloadKind.MANUAL,
            seed=seed,
            grid=grid,
            steps=steps,
            courant=courant,
            dissipation=dissipation,
            n_fields=n_fields,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Eleven workloads as in Table II: 7 Alberta + 4 SPEC-like."""
        ws = WorkloadSet(self.benchmark)
        configs = [
            (16, 12, 0.25, 0.01, 3, WorkloadKind.SPEC, "cactu.refrate"),
            (12, 8, 0.25, 0.01, 3, WorkloadKind.SPEC, "cactu.train"),
            (8, 4, 0.25, 0.01, 2, WorkloadKind.SPEC, "cactu.test"),
            (14, 10, 0.25, 0.01, 3, WorkloadKind.SPEC, "cactu.refspeed"),
            (20, 8, 0.25, 0.01, 3, WorkloadKind.MANUAL, "cactu.alberta.fine-grid"),
            (10, 24, 0.25, 0.01, 3, WorkloadKind.MANUAL, "cactu.alberta.long-run"),
            (14, 10, 0.10, 0.01, 3, WorkloadKind.MANUAL, "cactu.alberta.small-courant"),
            (14, 10, 0.45, 0.01, 3, WorkloadKind.MANUAL, "cactu.alberta.large-courant"),
            (14, 10, 0.25, 0.08, 3, WorkloadKind.MANUAL, "cactu.alberta.dissipative"),
            (14, 10, 0.25, 0.0, 3, WorkloadKind.MANUAL, "cactu.alberta.no-dissipation"),
            (12, 10, 0.25, 0.01, 6, WorkloadKind.MANUAL, "cactu.alberta.many-fields"),
        ]
        for i, (grid, steps, courant, diss, nf, kind, label) in enumerate(configs):
            w = self.generate(
                base_seed + i,
                grid=grid,
                steps=steps,
                courant=courant,
                dissipation=diss,
                n_fields=nf,
                name=label,
            )
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=kind,
                    seed=w.seed,
                    params=w.params,
                )
            )
        return ws
