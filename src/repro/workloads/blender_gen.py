"""Workload generator for ``526.blender_r`` (Section IV-B of the paper).

The Alberta blender workloads come from public .blend collections
(Crazy Glue, Elephants Dream) via two scripts: one that *identifies
.blend files that work with the benchmark* (some files are resource
libraries, not renderable scenes, and the benchmark supports only a
feature subset) and one that *randomly selects* suitable files; the
thirteen workloads vary memory footprint, start frame, and frame
count.  This generator reproduces the pipeline: a seeded scene library
containing both renderable scenes and resource-only files,
:func:`check_scene` (the suitability checker), and
:meth:`BlenderWorkloadGenerator.select` (the random selector).
"""

from __future__ import annotations

from ..core.registry import register_generator
from ..benchmarks.blender import BlendScene, MeshObject
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = ["BlenderWorkloadGenerator", "check_scene", "make_scene_library"]


def check_scene(scene: BlendScene) -> bool:
    """The suitability checker: is this .blend renderable by the bench?

    Mirrors the paper's script: resource-only files are rejected, as
    are scenes using unsupported features (here: excessive subdivision
    that the benchmark's feature subset would refuse)."""
    if not scene.renderable:
        return False
    return all(obj.subdivisions <= 3 for obj in scene.objects)


def make_scene_library(seed: int = 5, n_scenes: int = 24) -> list[BlendScene]:
    """A seeded library of .blend stand-ins, renderable and not."""
    rng = make_rng(seed)
    library: list[BlendScene] = []
    kinds = ("cube", "sphere", "plane")
    for i in range(n_scenes):
        n_objects = rng.randint(1, 6)
        objects = tuple(
            MeshObject(
                kind=rng.choice(kinds),
                subdivisions=rng.randint(0, 4),
                displace=rng.choice((0.0, 0.0, 0.15, 0.3)),
                scale=rng.uniform(0.5, 1.6),
                orbit_radius=rng.uniform(0.5, 3.0),
                orbit_speed=rng.uniform(0.1, 0.6),
                phase=rng.uniform(0, 6.28),
            )
            for _ in range(n_objects)
        )
        library.append(
            BlendScene(
                objects=objects,
                start_frame=rng.randint(0, 40),
                n_frames=rng.randint(1, 3),
                renderable=rng.random() > 0.2,  # some are resource files
            )
        )
    return library


@register_generator
class BlenderWorkloadGenerator:
    """Scene-library selection, as the paper's two scripts."""

    benchmark = "526.blender_r"

    def __init__(self, library: list[BlendScene] | None = None):
        self._library = library

    @property
    def library(self) -> list[BlendScene]:
        if self._library is None:
            self._library = make_scene_library()
        return self._library

    def select(self, seed: int) -> BlendScene:
        """Randomly select a *suitable* scene from the library."""
        rng = make_rng(seed)
        suitable = [s for s in self.library if check_scene(s)]
        if not suitable:
            raise ValueError("no suitable scenes in the library")
        return rng.choice(suitable)

    def generate(
        self,
        seed: int,
        *,
        start_frame: int | None = None,
        n_frames: int | None = None,
        name: str | None = None,
    ) -> Workload:
        scene = self.select(seed)
        if start_frame is not None or n_frames is not None:
            scene = BlendScene(
                objects=scene.objects,
                start_frame=start_frame if start_frame is not None else scene.start_frame,
                n_frames=n_frames if n_frames is not None else scene.n_frames,
                width=scene.width,
                height=scene.height,
                renderable=True,
            )
        return workload(
            self.benchmark,
            name or f"blender.alberta.s{seed}",
            scene,
            kind=WorkloadKind.SCRIPTED,
            seed=seed,
            start_frame=scene.start_frame,
            n_frames=scene.n_frames,
            n_objects=len(scene.objects),
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Sixteen workloads as in Table II: 13 Alberta + 3 SPEC-like.

        The thirteen Alberta selections vary maximum memory (object/
        subdivision load), start frame, and frame count, as the paper
        describes for the Crazy Glue / Elephants Dream files."""
        ws = WorkloadSet(self.benchmark)
        for i, (label, start, frames) in enumerate(
            [("blender.refrate", 0, 3), ("blender.train", 0, 2), ("blender.test", 0, 1)]
        ):
            w = self.generate(base_seed + 1000, start_frame=start, n_frames=frames, name=label)
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=WorkloadKind.SPEC,
                    seed=w.seed,
                    params=w.params,
                )
            )
        for i in range(13):
            ws.add(
                self.generate(
                    base_seed + i * 7 + 2,
                    n_frames=1 + i % 3,
                    start_frame=(i * 11) % 50,
                    name=f"blender.alberta.{i + 1}",
                )
            )
        return ws
