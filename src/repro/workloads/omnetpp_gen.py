"""Workload generator for ``520.omnetpp_r`` (Section IV-A of the paper).

The SPEC train and ref inputs only change how long the simulation runs;
they keep the same network.  The Alberta workloads instead change the
*topology*: "line topology, ring topology, star topology, tree
topology, and three random topologies with 9, 18, and 27 edges."  This
generator builds exactly those NED-equivalent topologies (plus traffic
parameters), and the SPEC-like trio that varies only simulation time.
"""

from __future__ import annotations

from ..core.registry import register_generator
from ..benchmarks.omnetpp import OmnetInput
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = ["OmnetppWorkloadGenerator", "topology_edges", "TOPOLOGIES"]

TOPOLOGIES = ("line", "ring", "star", "tree", "random")


def topology_edges(
    kind: str,
    n_nodes: int,
    *,
    n_edges: int | None = None,
    seed: int = 0,
) -> tuple[tuple[int, int], ...]:
    """Edge list for a named topology over ``n_nodes`` modules.

    ``random`` requires ``n_edges`` and always includes a connecting
    backbone so the network is never disconnected.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if kind == "line":
        return tuple((i, i + 1) for i in range(n_nodes - 1))
    if kind == "ring":
        return tuple((i, (i + 1) % n_nodes) for i in range(n_nodes))
    if kind == "star":
        return tuple((0, i) for i in range(1, n_nodes))
    if kind == "tree":
        # balanced binary tree
        return tuple((i, (i - 1) // 2) for i in range(1, n_nodes))
    if kind == "random":
        if n_edges is None or n_edges < n_nodes - 1:
            raise ValueError("random topology needs n_edges >= n_nodes - 1")
        rng = make_rng(seed)
        edges: set[tuple[int, int]] = set()
        order = list(range(n_nodes))
        rng.shuffle(order)
        for i in range(n_nodes - 1):
            a, b = order[i], order[i + 1]
            edges.add((min(a, b), max(a, b)))
        attempts = 0
        while len(edges) < n_edges and attempts < n_edges * 50:
            attempts += 1
            a, b = rng.randrange(n_nodes), rng.randrange(n_nodes)
            if a != b:
                edges.add((min(a, b), max(a, b)))
        return tuple(sorted(edges))
    raise ValueError(f"unknown topology {kind!r}")


@register_generator
class OmnetppWorkloadGenerator:
    """The paper's seven topology workloads + SPEC-like time variants."""

    benchmark = "520.omnetpp_r"

    def generate(
        self,
        seed: int,
        *,
        topology: str = "random",
        n_nodes: int = 10,
        n_edges: int | None = None,
        sim_time: int = 1500,
        send_interval_ms: float = 12.0,
        packet_bytes: int = 60_000,
        as_ned: bool = False,
        name: str | None = None,
    ) -> Workload:
        if topology == "random" and n_edges is None:
            n_edges = n_nodes + 4
        edges = topology_edges(topology, n_nodes, n_edges=n_edges, seed=seed)
        config = OmnetInput(
            n_nodes=n_nodes,
            edges=edges,
            sim_time=sim_time,
            send_interval_ms=send_interval_ms,
            packet_bytes=packet_bytes,
            seed=seed,
        )
        from ..benchmarks.omnetpp import to_ned

        payload = to_ned(config, name=f"{topology}{n_nodes}") if as_ned else config
        return workload(
            self.benchmark,
            name or f"omnetpp.{topology}.s{seed}",
            payload,
            kind=WorkloadKind.PROCEDURAL,
            seed=seed,
            topology=topology,
            n_nodes=n_nodes,
            n_edges=len(edges),
            sim_time=sim_time,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Ten workloads as in Table II: 7 Alberta topologies + 3 SPEC.

        The SPEC-like trio keeps one network and varies only the
        simulated time, exactly the pattern the paper criticizes; the
        Alberta seven change the topology (line/ring/star/tree and
        random with 9, 18, 27 edges).
        """
        ws = WorkloadSet(self.benchmark)
        spec = [
            ("random", 10, 14, 2000, "omnetpp.refrate"),
            ("random", 10, 14, 800, "omnetpp.train"),
            ("random", 10, 14, 200, "omnetpp.test"),
        ]
        alberta = [
            ("line", 10, None, 1500, "omnetpp.alberta.line"),
            ("ring", 10, None, 1500, "omnetpp.alberta.ring"),
            ("star", 10, None, 1500, "omnetpp.alberta.star"),
            ("tree", 10, None, 1500, "omnetpp.alberta.tree"),
            ("random", 8, 9, 1500, "omnetpp.alberta.random9"),
            ("random", 12, 18, 1500, "omnetpp.alberta.random18"),
            ("random", 14, 27, 1500, "omnetpp.alberta.random27"),
        ]
        for i, (topo, n_nodes, n_edges, sim_time, label) in enumerate(spec + alberta):
            # SPEC trio shares one seed (same network), Alberta vary
            seed = base_seed + (17 if i < len(spec) else i * 29)
            w = self.generate(
                seed,
                topology=topo,
                n_nodes=n_nodes,
                n_edges=n_edges,
                sim_time=sim_time,
                name=label,
            )
            kind = WorkloadKind.SPEC if i < len(spec) else WorkloadKind.PROCEDURAL
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=kind,
                    seed=w.seed,
                    params=w.params,
                )
            )
        return ws
