"""Workload generator for ``557.xz_r`` (Section IV-A of the paper).

The Alberta team's key insight for xz: the sliding-window dictionary
memoizes content, so a workload made by repeating a file shorter than
the dictionary degenerates into dictionary lookups instead of
exercising the compression search.  Their eight workloads therefore
span a 2x2x2-ish design: very compressible vs. barely compressible
content, and files smaller vs. larger than the dictionary — plus
repeated-content files that trigger the memoization path.

This generator reproduces that design procedurally:

* ``text`` — Markov-chain English-like text (very compressible);
* ``random`` — uniform random bytes (incompressible);
* ``mixed`` — alternating text and random blocks;
* ``repeated`` — a short seed block tiled to the target size (the
  memoization stressor);
* ``binary`` — structured records with repeating field layouts.
"""

from __future__ import annotations

from typing import Any

from ..core.registry import register_generator
from ..benchmarks.xz import XzInput, compress
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = ["XzWorkloadGenerator", "CONTENT_STYLES"]

CONTENT_STYLES = ("text", "random", "mixed", "repeated", "binary")

_WORDS = (
    b"the", b"of", b"and", b"to", b"in", b"a", b"is", b"that", b"for", b"it",
    b"benchmark", b"workload", b"compression", b"dictionary", b"window",
    b"spec", b"cpu", b"alberta", b"profile", b"feedback", b"optimization",
    b"lzma", b"stream", b"buffer", b"match", b"length", b"encode", b"decode",
)


def _text_content(rng: Any, size: int) -> bytes:
    """English-like text via a first-order Markov chain over a word list."""
    out = bytearray()
    prev = 0
    n_words = len(_WORDS)
    while len(out) < size:
        # favour transitions near the previous word index -> phrase reuse
        if rng.random() < 0.6:
            idx = (prev + rng.randint(0, 4)) % n_words
        else:
            idx = rng.randrange(n_words)
        out += _WORDS[idx]
        out += b" " if rng.random() > 0.1 else b".\n"
        prev = idx
    return bytes(out[:size])


def _random_content(rng: Any, size: int) -> bytes:
    return bytes(rng.randrange(256) for _ in range(size))


def _mixed_content(rng: Any, size: int) -> bytes:
    out = bytearray()
    while len(out) < size:
        block = min(1024, size - len(out))
        if rng.random() < 0.5:
            out += _text_content(rng, block)
        else:
            out += _random_content(rng, block)
    return bytes(out[:size])


def _repeated_content(rng: Any, size: int, block: int = 512) -> bytes:
    seed_block = _text_content(rng, block)
    reps = size // block + 1
    return (seed_block * reps)[:size]


def _binary_content(rng: Any, size: int) -> bytes:
    """Structured records: fixed layout, varying numeric fields."""
    out = bytearray()
    record_id = 0
    while len(out) < size:
        record_id += 1
        out += b"REC:"
        out += record_id.to_bytes(4, "big")
        out += bytes(rng.randrange(16) for _ in range(8))
        out += b"\x00" * 4
    return bytes(out[:size])


_MAKERS = {
    "text": _text_content,
    "random": _random_content,
    "mixed": _mixed_content,
    "repeated": _repeated_content,
    "binary": _binary_content,
}


@register_generator
class XzWorkloadGenerator:
    """Procedural xz workloads spanning compressibility x dictionary size."""

    benchmark = "557.xz_r"

    def generate(
        self,
        seed: int,
        *,
        style: str = "text",
        size: int = 16 * 1024,
        dict_size: int = 1 << 13,
        name: str | None = None,
        precompress: bool = True,
    ) -> Workload:
        if style not in _MAKERS:
            raise ValueError(f"unknown content style {style!r}; choose from {CONTENT_STYLES}")
        if size < 1024:
            raise ValueError("size must be >= 1024 bytes")
        rng = make_rng(seed)
        content = _MAKERS[style](rng, size)
        params = XzInput(content=content, dict_size=dict_size)
        if precompress:
            params = XzInput(
                content=content,
                dict_size=dict_size,
                stored=compress(content, params),
            )
        return workload(
            self.benchmark,
            name or f"xz.{style}.{size // 1024}k.s{seed}",
            params,
            kind=WorkloadKind.PROCEDURAL,
            seed=seed,
            style=style,
            size=size,
            dict_size=dict_size,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Twelve workloads, as in Table II (8 Alberta + 4 SPEC-like).

        The design crosses content style with below/above-dictionary
        sizes; the dictionary is 8 KiB so "large" files exceed it.
        """
        small = 4 * 1024
        large = 24 * 1024
        spec = [
            ("mixed", 16 * 1024, "xz.refrate"),
            ("text", 6 * 1024, "xz.train"),
            ("text", 2 * 1024, "xz.test"),
            ("binary", 12 * 1024, "xz.refspeed"),
        ]
        alberta = [
            ("text", small, "xz.alberta.text-small"),
            ("text", large, "xz.alberta.text-large"),
            ("random", small, "xz.alberta.random-small"),
            ("random", large, "xz.alberta.random-large"),
            ("repeated", small, "xz.alberta.repeated-small"),
            ("repeated", large, "xz.alberta.repeated-large"),
            ("mixed", large, "xz.alberta.mixed-large"),
            ("binary", large, "xz.alberta.binary-large"),
        ]
        ws = WorkloadSet(self.benchmark)
        for i, (style, size, wl_name) in enumerate(spec + alberta):
            kind = WorkloadKind.SPEC if wl_name.count(".") == 1 else WorkloadKind.PROCEDURAL
            w = self.generate(base_seed + i * 101, style=style, size=size, name=wl_name)
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=kind,
                    seed=w.seed,
                    params=w.params,
                )
            )
        return ws
