"""Workload-set manifests: persist and rebuild workload sets.

The Alberta Workloads are distributed as files; our workloads are
procedural, so their *manifest* (generator name, seed, parameters) is
a complete, tiny description — rebuilding from it reproduces the exact
payload bytes.  This module serializes manifests to JSON and rebuilds
sets through the generator registry, filtering each entry's recorded
parameters to what the generator's ``generate`` signature accepts
(manifests also record derived metadata like ``n_trips`` that is not
an input).
"""

from __future__ import annotations

import inspect
import json
from pathlib import Path
from typing import Any

from ..core.registry import get_generator
from ..core.workload import Workload, WorkloadSet

__all__ = ["save_manifest", "load_manifest", "rebuild_workload", "rebuild_set"]

_FORMAT_VERSION = 1


def save_manifest(workloads: WorkloadSet, path: str | Path) -> None:
    """Write a workload set's manifest as JSON."""
    doc = {
        "format_version": _FORMAT_VERSION,
        "benchmark": workloads.benchmark,
        "workloads": workloads.manifest(),
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True))


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read a manifest document, checking the format version."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported manifest format_version {version!r}")
    if "benchmark" not in doc or "workloads" not in doc:
        raise ValueError("manifest missing required keys")
    return doc


def _accepted_params(generator: Any, params: dict[str, Any]) -> dict[str, Any]:
    """Filter recorded params to the generator's keyword signature."""
    signature = inspect.signature(generator.generate)
    accepted = {
        name
        for name, p in signature.parameters.items()
        if p.kind in (p.KEYWORD_ONLY, p.POSITIONAL_OR_KEYWORD) and name != "seed"
    }
    return {k: v for k, v in params.items() if k in accepted}


def rebuild_workload(entry: dict[str, Any]) -> Workload:
    """Reconstruct one workload from its manifest entry.

    The rebuilt workload carries the recorded name and provenance kind;
    because generation is seed-deterministic, the payload is
    bit-identical to the original.
    """
    benchmark_id = entry["benchmark"]
    generator = get_generator(benchmark_id)
    seed = entry.get("seed")
    if seed is None:
        raise ValueError(
            f"manifest entry {entry.get('name')!r} has no seed; only "
            "procedurally generated workloads can be rebuilt"
        )
    kwargs = _accepted_params(generator, dict(entry.get("params", {})))
    if "name" in inspect.signature(generator.generate).parameters:
        kwargs["name"] = entry["name"]
    rebuilt = generator.generate(seed, **kwargs)
    return Workload(
        name=entry["name"],
        benchmark=benchmark_id,
        payload=rebuilt.payload,
        kind=entry.get("kind", rebuilt.kind),
        seed=seed,
        params=entry.get("params", {}),
    )


def rebuild_set(doc: dict[str, Any]) -> WorkloadSet:
    """Reconstruct a whole workload set from a manifest document."""
    ws = WorkloadSet(doc["benchmark"])
    for entry in doc["workloads"]:
        ws.add(rebuild_workload(entry))
    return ws
