"""Workload generator for ``502.gcc_r`` (Section IV-A of the paper).

The paper's gcc workloads come from three sources, all reproduced here:

1. **Public single-file C programs** — a bundled corpus of hand-written
   mini-C programs (:data:`CORPUS`) standing in for McCamant's "large
   single compilation-unit C programs".
2. **The OneFile tool** — the paper's tool that combines a multi-file C
   project into one compilation unit, handling identifier collisions by
   name-mangling.  :func:`one_file` implements that for mini-C: it
   merges files, renames colliding non-shared functions
   (``<file>__<name>``), and rewrites call sites file-locally.  The
   paper used OneFile on three code bases — *mcf*, *lbm* and
   *johnripper* — and :data:`PROJECTS` provides mini-C projects of the
   same flavour.
3. **Procedural generation** — :func:`generate_program` emits random
   but deterministic, always-terminating mini-C programs with
   configurable function count, loop density, and expression depth.
"""

from __future__ import annotations

import re

from ..core.registry import register_generator
from ..benchmarks.gcc import CSource
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = [
    "GccWorkloadGenerator",
    "one_file",
    "OneFileError",
    "preprocess",
    "PreprocessorError",
    "generate_program",
    "CORPUS",
    "PROJECTS",
]


class PreprocessorError(Exception):
    """The mini-preprocessor rejected a directive."""


def preprocess(
    source: str,
    *,
    includes: dict[str, str] | None = None,
    defines: dict[str, str] | None = None,
) -> str:
    """A mini C preprocessor for OneFile inputs.

    The paper names "properly handling preprocessing logic" as one of
    OneFile's main challenges.  This handles the subset multi-file
    mini-C projects use:

    * ``#include "name"`` — splice a project header (cycles rejected);
    * ``#define NAME value`` — object-like macros, token substitution;
    * ``#ifdef NAME`` / ``#else`` / ``#endif`` — conditional sections;
    * ``#undef NAME``.
    """
    import re as _re

    includes = includes or {}
    macros = dict(defines or {})
    out: list[str] = []
    including: set[str] = set()

    def _expand(line: str) -> str:
        for name, value in macros.items():
            line = _re.sub(rf"\b{_re.escape(name)}\b", value, line)
        return line

    def _run(text: str) -> None:
        # condition stack: each entry is "are we emitting in this arm?"
        stack: list[bool] = []
        for raw in text.splitlines():
            line = raw.strip()
            if line.startswith("#"):
                parts = line[1:].split(None, 2)
                directive = parts[0] if parts else ""
                emitting = all(stack)
                if directive == "include":
                    if not emitting:
                        continue
                    m = _re.match(r'#\s*include\s+"([^"]+)"', line)
                    if not m:
                        raise PreprocessorError(f"bad include: {line!r}")
                    name = m.group(1)
                    if name in including:
                        raise PreprocessorError(f"include cycle through {name!r}")
                    if name not in includes:
                        raise PreprocessorError(f"missing include file {name!r}")
                    including.add(name)
                    _run(includes[name])
                    including.discard(name)
                elif directive == "define":
                    if emitting:
                        if len(parts) < 2:
                            raise PreprocessorError(f"bad define: {line!r}")
                        macros[parts[1]] = parts[2] if len(parts) > 2 else "1"
                elif directive == "undef":
                    if emitting and len(parts) > 1:
                        macros.pop(parts[1], None)
                elif directive == "ifdef":
                    if len(parts) < 2:
                        raise PreprocessorError(f"bad ifdef: {line!r}")
                    stack.append(parts[1] in macros)
                elif directive == "ifndef":
                    if len(parts) < 2:
                        raise PreprocessorError(f"bad ifndef: {line!r}")
                    stack.append(parts[1] not in macros)
                elif directive == "else":
                    if not stack:
                        raise PreprocessorError("#else without #ifdef")
                    stack[-1] = not stack[-1]
                elif directive == "endif":
                    if not stack:
                        raise PreprocessorError("#endif without #ifdef")
                    stack.pop()
                else:
                    raise PreprocessorError(f"unknown directive: {line!r}")
                continue
            if all(stack):
                out.append(_expand(raw))
        if stack:
            raise PreprocessorError("unterminated #ifdef")

    _run(source)
    return "\n".join(out)


class OneFileError(Exception):
    """OneFile could not merge the project (e.g. ambiguous references)."""


_FUNC_DEF = re.compile(r"\bint\s+([A-Za-z_]\w*)\s*\(")


def _function_names(source: str) -> list[str]:
    """Names of functions *defined* in a mini-C file (not just called)."""
    names = []
    for m in _FUNC_DEF.finditer(source):
        # a definition is followed by a parameter list then '{'
        rest = source[m.end():]
        depth = 1
        i = 0
        while i < len(rest) and depth:
            if rest[i] == "(":
                depth += 1
            elif rest[i] == ")":
                depth -= 1
            i += 1
        tail = rest[i:].lstrip()
        if tail.startswith("{"):
            names.append(m.group(1))
    return names


def one_file(
    files: dict[str, str],
    entry: str = "main",
    *,
    headers: dict[str, str] | None = None,
    defines: dict[str, str] | None = None,
) -> str:
    """Merge a multi-file mini-C project into a single compilation unit.

    The paper's OneFile tool tracks files and external declarations,
    name-mangles identifiers to avoid collisions, and handles
    preprocessing logic.  Mini-C has no preprocessor, so the job here
    is: find function names defined in more than one file, rename each
    such definition to ``<file>__<name>``, rewrite call sites within
    the defining file (C's static-linkage intuition), and concatenate.

    Exactly one file may define ``entry``; calls to functions defined
    in exactly one file resolve across files unchanged.
    """
    if not files:
        raise OneFileError("no files to merge")
    if headers or defines or any("#" in src for src in files.values()):
        files = {
            fname: preprocess(src, includes=headers, defines=defines)
            for fname, src in files.items()
        }
    defined_in: dict[str, list[str]] = {}
    for fname, src in files.items():
        for func in _function_names(src):
            defined_in.setdefault(func, []).append(fname)

    if entry not in defined_in:
        raise OneFileError(f"no file defines the entry function {entry!r}")
    if len(defined_in[entry]) > 1:
        raise OneFileError(f"multiple files define {entry!r}: {defined_in[entry]}")

    pieces: list[str] = []
    for fname, src in sorted(files.items()):
        out = src
        for func, owners in defined_in.items():
            if len(owners) <= 1 or fname not in owners:
                continue
            if func == entry:
                continue
            stem = fname.rsplit(".", 1)[0].replace("-", "_")
            mangled = f"{stem}__{func}"
            # rewrite both the definition and file-local call sites
            out = re.sub(rf"\b{re.escape(func)}\b", mangled, out)
        pieces.append(f"// --- from {fname}\n{out}")
    return "\n".join(pieces)


# --------------------------------------------------------------- the corpus

#: Hand-written single-file mini-C programs (public-corpus stand-ins).
CORPUS: dict[str, str] = {
    "fib": """
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() {
  int total = 0;
  int i = 0;
  while (i < 15) { total = total + fib(i); i = i + 1; }
  return total;
}
""",
    "sieve": """
int is_prime(int n) {
  if (n < 2) { return 0; }
  int d = 2;
  while (d * d <= n) {
    if (n % d == 0) { return 0; }
    d = d + 1;
  }
  return 1;
}
int main() {
  int count = 0;
  int n = 2;
  while (n < 600) {
    if (is_prime(n)) { count = count + 1; }
    n = n + 1;
  }
  return count;
}
""",
    "collatz": """
int steps(int n) {
  int count = 0;
  while (n != 1) {
    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
    count = count + 1;
  }
  return count;
}
int main() {
  int longest = 0;
  int n = 1;
  while (n < 120) {
    int s = steps(n);
    if (s > longest) { longest = s; }
    n = n + 1;
  }
  return longest;
}
""",
}

#: Multi-file mini-C projects of the flavour the paper merged with
#: OneFile (mcf, lbm, johnripper).
PROJECTS: dict[str, dict[str, str]] = {
    "mcf": {
        "graph.c": """
int cost(int u, int v) { return (u * 7 + v * 13) % 19 + 1; }
int relax(int d, int w) { if (w < d) { return w; } return d; }
""",
        "simplex.c": """
int cost(int u, int v) { return (u * 3 + v * 5) % 11 + 1; }
int price(int n) {
  int best = 9999;
  int u = 0;
  while (u < n) {
    int v = 0;
    while (v < n) {
      best = relax(best, cost(u, v));
      v = v + 1;
    }
    u = u + 1;
  }
  return best;
}
int main() {
  int rounds = 0;
  int total = 0;
  while (rounds < 10) {
    total = total + price(12 + rounds % 5);
    rounds = rounds + 1;
  }
  return total;
}
""",
    },
    "lbm": {
        "stencil.c": """
int site(int x, int y, int t) { return (x * 31 + y * 17 + t * 7) % 97; }
int collide(int f0, int f1, int f2) { return (f0 + f1 + f2) / 3; }
""",
        "driver.c": """
int step(int t, int n) {
  int acc = 0;
  int x = 1;
  while (x < n - 1) {
    int y = 1;
    while (y < n - 1) {
      acc = acc + collide(site(x - 1, y, t), site(x, y, t), site(x + 1, y, t));
      y = y + 1;
    }
    x = x + 1;
  }
  return acc % 1000;
}
int main() {
  int t = 0;
  int total = 0;
  while (t < 6) { total = total + step(t, 10); t = t + 1; }
  return total;
}
""",
    },
    "johnripper": {
        "hash.c": """
int hash(int word) { return (word * 2654435761) % 65536; }
int check(int word, int target) { if (hash(word) == target) { return 1; } return 0; }
""",
        "crack.c": """
int hash(int word) { return (word * 31 + 7) % 65536; }
int crack(int target, int limit) {
  int word = 0;
  while (word < limit) {
    if (check(word, target)) { return word; }
    word = word + 1;
  }
  return 0 - 1;
}
int main() {
  int found = 0;
  int t = 100;
  while (t < 112) {
    if (crack(t * 37 % 4096, 160) >= 0) { found = found + 1; }
    t = t + 1;
  }
  return found;
}
""",
    },
}


# -------------------------------------------------------- procedural source


def generate_program(
    seed: int,
    *,
    n_functions: int = 8,
    expr_depth: int = 3,
    loop_density: float = 0.5,
    statements_per_function: int = 6,
) -> str:
    """Generate a deterministic, always-terminating mini-C program.

    Functions only call lower-numbered functions, loops always run over
    a bounded counter, and every division is by a non-zero constant —
    so the program terminates and the compiler's VM validation passes.
    """
    if n_functions < 1:
        raise ValueError("n_functions must be >= 1")
    rng = make_rng(seed)
    func_names = [f"f{i}" for i in range(n_functions)]

    def _expr(depth: int, vars_: list[str], callees: list[str]) -> str:
        if depth <= 0 or rng.random() < 0.3:
            choices = [str(rng.randint(1, 99))]
            if vars_:
                choices.append(rng.choice(vars_))
            return rng.choice(choices)
        roll = rng.random()
        if roll < 0.15 and callees:
            callee = rng.choice(callees)
            arg = _expr(depth - 1, vars_, [])
            return f"{callee}({arg})"
        op = rng.choice(["+", "-", "*", "%", "/", "&", "|", "^"])
        left = _expr(depth - 1, vars_, callees)
        right = (
            str(rng.randint(1, 31))
            if op in ("%", "/")
            else _expr(depth - 1, vars_, callees)
        )
        return f"({left} {op} {right})"

    def _cond(vars_: list[str]) -> str:
        op = rng.choice(["<", ">", "==", "!=", "<=", ">="])
        left = rng.choice(vars_) if vars_ else str(rng.randint(0, 9))
        return f"{left} {op} {rng.randint(0, 50)}"

    lines: list[str] = []
    for i, name in enumerate(func_names[:-1]):
        callees = func_names[: max(0, i)]
        lines.append(f"int {name}(int a) {{")
        lines.append("  int acc = a;")
        body_vars = ["a", "acc"]
        for _ in range(statements_per_function // 2):
            if rng.random() < loop_density:
                bound = rng.randint(2, 9)
                lines.append(f"  int i{bound} = 0;")
                lines.append(f"  while (i{bound} < {bound}) {{")
                lines.append(
                    f"    acc = (acc + {_expr(expr_depth - 1, body_vars, callees)}) % 100000;"
                )
                lines.append(f"    i{bound} = i{bound} + 1;")
                lines.append("  }")
            elif rng.random() < 0.5:
                lines.append(f"  if ({_cond(body_vars)}) {{")
                lines.append(f"    acc = acc + {_expr(expr_depth, body_vars, callees)};")
                lines.append("  } else {")
                lines.append(f"    acc = acc - {_expr(expr_depth - 1, body_vars, [])};")
                lines.append("  }")
            else:
                lines.append(f"  acc = {_expr(expr_depth, body_vars, callees)};")
        lines.append("  return acc % 100000;")
        lines.append("}")

    # main drives every function over a bounded loop
    lines.append("int main() {")
    lines.append("  int total = 0;")
    lines.append("  int k = 0;")
    lines.append(f"  while (k < {rng.randint(4, 12)}) {{")
    for name in func_names[:-1]:
        lines.append(f"    total = (total + {name}(k + {rng.randint(0, 7)})) % 1000000;")
    lines.append("    k = k + 1;")
    lines.append("  }")
    lines.append("  return total;")
    lines.append("}")
    return "\n".join(lines)


@register_generator
class GccWorkloadGenerator:
    """Corpus + OneFile-merged projects + procedural programs."""

    benchmark = "502.gcc_r"

    def generate(
        self,
        seed: int,
        *,
        source: str | None = None,
        n_functions: int = 8,
        expr_depth: int = 3,
        loop_density: float = 0.5,
        opt_level: int = 2,
        name: str | None = None,
    ) -> Workload:
        """Procedural workload (or wrap explicit ``source`` text)."""
        text = source or generate_program(
            seed,
            n_functions=n_functions,
            expr_depth=expr_depth,
            loop_density=loop_density,
        )
        return workload(
            self.benchmark,
            name or f"gcc.generated.s{seed}",
            CSource(text=text, opt_level=opt_level),
            kind=WorkloadKind.PROCEDURAL,
            seed=seed,
            n_functions=n_functions,
            expr_depth=expr_depth,
            loop_density=loop_density,
            opt_level=opt_level,
        )

    def from_corpus(self, key: str, *, opt_level: int = 2) -> Workload:
        """A public-corpus single-file workload."""
        return workload(
            self.benchmark,
            f"gcc.corpus.{key}",
            CSource(text=CORPUS[key], opt_level=opt_level),
            kind=WorkloadKind.PUBLIC,
            corpus=key,
            opt_level=opt_level,
        )

    def from_project(self, key: str, *, opt_level: int = 2) -> Workload:
        """A OneFile-merged multi-file project workload."""
        merged = one_file(PROJECTS[key])
        return workload(
            self.benchmark,
            f"gcc.onefile.{key}",
            CSource(text=merged, opt_level=opt_level),
            kind=WorkloadKind.DERIVED,
            project=key,
            opt_level=opt_level,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Nineteen workloads as in Table II.

        3 SPEC-like + 3 public corpus + 3 OneFile projects + 10
        procedural programs spanning size / expression / loop shape.
        """
        ws = WorkloadSet(self.benchmark)
        for label, seed_off, nf, depth, dens in (
            ("gcc.refrate", 900, 14, 4, 0.6),
            ("gcc.train", 901, 8, 3, 0.5),
            ("gcc.test", 902, 3, 2, 0.3),
        ):
            w = self.generate(
                base_seed + seed_off,
                n_functions=nf,
                expr_depth=depth,
                loop_density=dens,
                name=label,
            )
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=WorkloadKind.SPEC,
                    seed=w.seed,
                    params=w.params,
                )
            )
        for key in CORPUS:
            ws.add(self.from_corpus(key))
        for key in PROJECTS:
            ws.add(self.from_project(key))
        shapes = [
            (4, 6, 0.1), (6, 5, 0.3), (10, 2, 0.8), (12, 3, 0.5), (16, 2, 0.4),
            (20, 3, 0.4), (5, 4, 0.9), (9, 5, 0.2), (14, 4, 0.7), (24, 2, 0.5),
        ]
        for i, (nf, depth, dens) in enumerate(shapes):
            ws.add(
                self.generate(
                    base_seed + i * 61 + 5,
                    n_functions=nf,
                    expr_depth=depth,
                    loop_density=dens,
                    name=f"gcc.alberta.{i + 1}",
                    opt_level=2 if i % 3 else 0,
                )
            )
        return ws
