"""Workload generator for ``548.exchange2_r`` (Section IV-A of the paper).

The paper's finding for this benchmark: replacing the 27 distributed
seed puzzles with new seeds — even maximally difficult ones — made runs
too short, so all ten Alberta workloads *reuse the 27 SPEC seeds* and a
script simply chooses how many puzzles to process per workload (the
seed file can be swapped by replacing one file).  This generator does
the same: :data:`SPEC_SEEDS` plays the role of the distributed seed
collection (27 puzzles derived from transformed canonical solutions
with varied clue patterns), and workloads select seeds and set the
per-seed generation count.
"""

from __future__ import annotations

from ..core.registry import register_generator
from ..benchmarks.exchange2 import SudokuInput, _canonical_solution, _transform_solution, solve
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = ["Exchange2WorkloadGenerator", "SPEC_SEEDS", "make_seed_collection"]


def make_seed_collection(n_seeds: int = 27, base_seed: int = 27) -> tuple[str, ...]:
    """Build a seed-puzzle collection (stand-in for SPEC's 27 seeds).

    Each seed: transform the canonical solution, then keep a clue
    pattern of 28-36 cells.  Every produced seed is checked solvable.
    """
    rng = make_rng(base_seed)
    seeds: list[str] = []
    base = _canonical_solution()
    while len(seeds) < n_seeds:
        solution = _transform_solution(base, rng)
        n_clues = rng.randint(28, 36)
        cells = list(range(81))
        rng.shuffle(cells)
        keep = set(cells[:n_clues])
        puzzle = "".join(str(solution[i]) if i in keep else "0" for i in range(81))
        if solve(puzzle) is not None:
            seeds.append(puzzle)
    return tuple(seeds)


#: The stand-in for the benchmark's distributed 27-seed collection.
SPEC_SEEDS: tuple[str, ...] = make_seed_collection()


@register_generator
class Exchange2WorkloadGenerator:
    """Selects seeds and sets the puzzle count, as the Alberta script."""

    benchmark = "548.exchange2_r"

    def __init__(self, seeds: tuple[str, ...] = SPEC_SEEDS):
        self.seeds = seeds

    def generate(
        self,
        seed: int,
        *,
        n_seeds: int = 4,
        puzzles_per_seed: int = 2,
        name: str | None = None,
    ) -> Workload:
        if n_seeds < 1:
            raise ValueError("n_seeds must be >= 1")
        rng = make_rng(seed)
        chosen = tuple(rng.sample(self.seeds, min(n_seeds, len(self.seeds))))
        return workload(
            self.benchmark,
            name or f"exchange2.alberta.s{seed}",
            SudokuInput(seeds=chosen, puzzles_per_seed=puzzles_per_seed),
            kind=WorkloadKind.SCRIPTED,
            seed=seed,
            n_seeds=n_seeds,
            puzzles_per_seed=puzzles_per_seed,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Thirteen workloads as in Table II: 10 Alberta + 3 SPEC-like."""
        ws = WorkloadSet(self.benchmark)
        spec = [
            (6, 3, "exchange2.refrate"),
            (4, 2, "exchange2.train"),
            (2, 1, "exchange2.test"),
        ]
        alberta = [(3 + (i % 4), 1 + (i % 3), f"exchange2.alberta.{i + 1}") for i in range(10)]
        for i, (n_seeds, per_seed, label) in enumerate(spec + alberta):
            w = self.generate(
                base_seed + i * 13 + 1,
                n_seeds=n_seeds,
                puzzles_per_seed=per_seed,
                name=label,
            )
            kind = WorkloadKind.SPEC if i < len(spec) else WorkloadKind.SCRIPTED
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=kind,
                    seed=w.seed,
                    params=w.params,
                )
            )
        return ws
