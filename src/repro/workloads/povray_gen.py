"""Workload generator for ``511.povray_r`` (Section IV-B of the paper).

The paper's seven povray workloads fall into three families:

* **collection** — "real-world uses of POV-Ray ... rendering of
  moderately complex geometry made up of simple primitives";
* **lumpy** — "a single object placed over a checkered plane and
  illuminated by two spotlights", stressing the FPU;
* **primitive** — "geometric primitives built into POV-Ray ...
  emphasize rendering techniques such as reflection, refraction, and
  camera lens aperture".

:class:`PovrayWorkloadGenerator` builds scenes of each family.
"""

from __future__ import annotations

from ..core.registry import register_generator
from ..benchmarks.povray import Light, PlaneFloor, SceneInput, Sphere
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = ["PovrayWorkloadGenerator", "SCENE_FAMILIES"]

SCENE_FAMILIES = ("collection", "lumpy", "primitive")


def _collection_scene(rng, n_objects: int) -> SceneInput:
    """Many simple diffuse primitives: intersection-heavy."""
    spheres = tuple(
        Sphere(
            center=(rng.uniform(-3, 3), rng.uniform(0.3, 2.5), rng.uniform(-1, 4)),
            radius=rng.uniform(0.2, 0.7),
            color=(rng.uniform(0.2, 1), rng.uniform(0.2, 1), rng.uniform(0.2, 1)),
            reflect=0.1 if rng.random() < 0.3 else 0.0,
        )
        for _ in range(n_objects)
    )
    lights = (Light(position=(4.0, 6.0, -3.0), intensity=1.0),)
    return SceneInput(
        spheres=spheres,
        floor=PlaneFloor(checker=False),
        lights=lights,
        family="collection",
    )


def _lumpy_scene(rng) -> SceneInput:
    """One object over a checkered plane, two spotlights (FPU stress)."""
    lump = Sphere(
        center=(0.0, 1.0, 1.0),
        radius=1.0 + rng.uniform(-0.2, 0.2),
        color=(0.7, 0.6, 0.5),
        reflect=0.05,
    )
    lights = (
        Light(position=(3.0, 5.0, -2.0), intensity=1.4, spot_target=(0.0, 1.0, 1.0), spot_angle=0.5),
        Light(position=(-3.0, 5.0, -2.0), intensity=1.4, spot_target=(0.0, 1.0, 1.0), spot_angle=0.5),
    )
    return SceneInput(
        spheres=(lump,),
        floor=PlaneFloor(checker=True),
        lights=lights,
        max_depth=2,
        family="lumpy",
    )


def _primitive_scene(rng, aperture_samples: int) -> SceneInput:
    """Reflective/refractive primitives + camera aperture."""
    spheres = (
        Sphere(center=(-1.2, 1.0, 1.5), radius=0.9, color=(0.9, 0.9, 0.95), reflect=0.7),
        Sphere(
            center=(1.1, 0.9, 1.0),
            radius=0.8,
            color=(0.4, 0.7, 0.9),
            refract=0.8,
            ior=1.5 + rng.uniform(-0.2, 0.2),
        ),
        Sphere(center=(0.0, 0.5, 3.0), radius=0.5, color=(0.9, 0.4, 0.3), reflect=0.3),
    )
    lights = (Light(position=(5.0, 7.0, -4.0), intensity=1.2),)
    return SceneInput(
        spheres=spheres,
        floor=PlaneFloor(checker=True, reflect=0.2),
        lights=lights,
        max_depth=4,
        aperture_samples=aperture_samples,
        family="primitive",
    )


@register_generator
class PovrayWorkloadGenerator:
    """Collection / lumpy / primitive scenes, as in the paper."""

    benchmark = "511.povray_r"

    def generate(
        self,
        seed: int,
        *,
        family: str = "collection",
        n_objects: int = 10,
        aperture_samples: int = 3,
        name: str | None = None,
    ) -> Workload:
        rng = make_rng(seed)
        if family == "collection":
            scene = _collection_scene(rng, n_objects)
        elif family == "lumpy":
            scene = _lumpy_scene(rng)
        elif family == "primitive":
            scene = _primitive_scene(rng, aperture_samples)
        else:
            raise ValueError(f"unknown scene family {family!r}")
        return workload(
            self.benchmark,
            name or f"povray.{family}.s{seed}",
            scene,
            kind=WorkloadKind.MANUAL,
            seed=seed,
            family=family,
            n_objects=n_objects if family == "collection" else len(scene.spheres),
            aperture_samples=scene.aperture_samples,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Ten workloads as in Table II: 7 Alberta + 3 SPEC-like."""
        ws = WorkloadSet(self.benchmark)
        configs = [
            ("collection", 12, 1, WorkloadKind.SPEC, "povray.refrate"),
            ("collection", 7, 1, WorkloadKind.SPEC, "povray.train"),
            ("collection", 3, 1, WorkloadKind.SPEC, "povray.test"),
            ("collection", 16, 1, WorkloadKind.MANUAL, "povray.alberta.collection1"),
            ("collection", 24, 1, WorkloadKind.MANUAL, "povray.alberta.collection2"),
            ("lumpy", 1, 1, WorkloadKind.MANUAL, "povray.alberta.lumpy1"),
            ("lumpy", 1, 1, WorkloadKind.MANUAL, "povray.alberta.lumpy2"),
            ("lumpy", 1, 1, WorkloadKind.MANUAL, "povray.alberta.lumpy3"),
            ("primitive", 3, 4, WorkloadKind.MANUAL, "povray.alberta.primitive1"),
            ("primitive", 3, 6, WorkloadKind.MANUAL, "povray.alberta.primitive2"),
        ]
        for i, (family, n_obj, samples, kind, label) in enumerate(configs):
            w = self.generate(
                base_seed + i * 23 + 1,
                family=family,
                n_objects=n_obj,
                aperture_samples=samples,
                name=label,
            )
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=kind,
                    seed=w.seed,
                    params=w.params,
                )
            )
        return ws
