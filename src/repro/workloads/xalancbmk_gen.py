"""Workload generator for ``523.xalancbmk_r`` (Section IV-A of the paper).

The Alberta workloads came from two XSLT benchmark families:

* **XSLTMark-style** — after studying the format of one XML file, the
  team wrote a script producing *random XML files of different sizes
  with the same format*, reusing one stylesheet.  We reproduce that
  directly: :func:`make_records_xml` emits record-oriented documents of
  any size with a fixed schema.
* **XMark-style** — XMark ships twenty short queries over an auction
  document; two need XSLT 2.0, so the paper *combined the remaining
  eighteen queries* into one workload.  :func:`make_auction_xml` builds
  the auction-site document and :data:`XMARK_QUERIES` provides eighteen
  query operations that are combined into single workloads.

The five Alberta workloads plus three SPEC-like ones give the eight
workloads of Table II.
"""

from __future__ import annotations

from ..core.registry import register_generator
from ..benchmarks.xalancbmk import TransformOp, XalanInput
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = [
    "XalancbmkWorkloadGenerator",
    "make_records_xml",
    "make_auction_xml",
    "XMARK_QUERIES",
]

_FIRST = ("alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi")
_LAST = ("smith", "jones", "kim", "garcia", "chen", "patel", "novak", "silva")
_CATEGORIES = ("books", "music", "tools", "sports", "garden", "toys")
_CITIES = ("edmonton", "campinas", "london", "redmond", "austin", "seattle")


def make_records_xml(rng, n_records: int) -> str:
    """XSLTMark-style record document: flat, schema-regular."""
    rows = ["<records>"]
    for i in range(n_records):
        first = rng.choice(_FIRST)
        last = rng.choice(_LAST)
        rows.append(
            f'<record id="{i}" region="{rng.choice(_CITIES)}">'
            f"<name>{first} {last}</name>"
            f"<score>{rng.randint(0, 10_000)}</score>"
            f"<balance>{rng.uniform(0, 5000):.2f}</balance>"
            f"<note>{'x' * rng.randint(4, 40)}</note>"
            "</record>"
        )
    rows.append("</records>")
    return "".join(rows)


def make_auction_xml(rng, n_items: int, n_people: int) -> str:
    """XMark-style auction document: nested regions/items/people/bids."""
    parts = ["<site>", "<regions>"]
    per_region = max(1, n_items // len(_CATEGORIES))
    item_id = 0
    for region in _CATEGORIES:
        parts.append(f"<{region}>")
        for _ in range(per_region):
            item_id += 1
            n_bids = rng.randint(0, 5)
            bids = "".join(
                f'<bid increase="{rng.randint(1, 50)}">'
                f"<bidder>p{rng.randrange(max(1, n_people))}</bidder></bid>"
                for _ in range(n_bids)
            )
            parts.append(
                f'<item id="i{item_id}" featured="{"yes" if rng.random() < 0.2 else "no"}">'
                f"<name>item {item_id}</name>"
                f"<price>{rng.uniform(1, 500):.2f}</price>"
                f"<quantity>{rng.randint(1, 9)}</quantity>"
                f"<description>{'lorem ' * rng.randint(1, 6)}</description>"
                f"<bids>{bids}</bids>"
                "</item>"
            )
        parts.append(f"</{region}>")
    parts.append("</regions><people>")
    for p in range(n_people):
        parts.append(
            f'<person id="p{p}">'
            f"<name>{rng.choice(_FIRST)} {rng.choice(_LAST)}</name>"
            f"<city>{rng.choice(_CITIES)}</city>"
            f"<income>{rng.uniform(20_000, 150_000):.0f}</income>"
            "</person>"
        )
    parts.append("</people></site>")
    return "".join(parts)


#: Eighteen XMark-like queries (the paper combined XMark's eighteen
#: XSLT-1.0-compatible queries into one workload).
XMARK_QUERIES: tuple[TransformOp, ...] = (
    TransformOp("extract", "regions/*/item", key="name"),
    TransformOp("extract", "regions/books/item", key="price"),
    TransformOp("extract", "regions/*/item[featured=yes]", key="name"),
    TransformOp("aggregate", "regions/*/item", key="price"),
    TransformOp("aggregate", "regions/*/item", key="quantity"),
    TransformOp("aggregate", "people/person", key="income"),
    TransformOp("sort", "regions/*/item", key="price"),
    TransformOp("sort", "people/person", key="name"),
    TransformOp("sort", "regions/*/item", key="name"),
    TransformOp("string", "people/person", key="name", params=(("A", "4"), ("E", "3"))),
    TransformOp("string", "regions/*/item", key="description"),
    TransformOp("extract", "people/person", key="city"),
    TransformOp("extract", "regions/*/item/bids/bid", key="bidder"),
    TransformOp("aggregate", "regions/*/item/bids/bid", key="@increase"),
    TransformOp("descend", "regions"),
    TransformOp("descend", "people"),
    TransformOp("extract", "regions/*/item[bids]", key="name"),
    TransformOp("sort", "regions/*/item", key="quantity"),
)

#: XSLTMark-style stylesheets over record documents, each emphasizing a
#: different engine path.
_RECORD_STYLESHEETS: dict[str, tuple[TransformOp, ...]] = {
    "identity": (
        TransformOp("extract", "record", key="name"),
        TransformOp("extract", "record", key="score"),
        TransformOp("descend", "."),
    ),
    "sortkey": (
        TransformOp("sort", "record", key="score"),
        TransformOp("sort", "record", key="name"),
        TransformOp("sort", "record", key="balance"),
    ),
    "compute": (
        TransformOp("aggregate", "record", key="score"),
        TransformOp("aggregate", "record", key="balance"),
        TransformOp("aggregate", "record[region=edmonton]", key="score"),
        TransformOp("aggregate", "record[region=london]", key="balance"),
    ),
    "stringy": (
        TransformOp("string", "record", key="name", params=(("A", "@"), ("O", "0"))),
        TransformOp("string", "record", key="note"),
    ),
}


@register_generator
class XalancbmkWorkloadGenerator:
    """Record-format documents + query-set combination, per the paper."""

    benchmark = "523.xalancbmk_r"

    def generate(
        self,
        seed: int,
        *,
        family: str = "records",
        stylesheet: str = "identity",
        size: int = 400,
        repeats: int = 2,
        name: str | None = None,
    ) -> Workload:
        """One workload.

        ``family``: ``"records"`` (XSLTMark-style; ``stylesheet`` picks
        one of identity/sortkey/compute/stringy and ``size`` is the
        record count) or ``"auction"`` (XMark-style; the eighteen
        combined queries run over an auction site with ``size`` items).
        """
        rng = make_rng(seed)
        if family == "records":
            if stylesheet not in _RECORD_STYLESHEETS:
                raise ValueError(f"unknown stylesheet {stylesheet!r}")
            xml = make_records_xml(rng, size)
            ops = _RECORD_STYLESHEETS[stylesheet]
            label = name or f"xalancbmk.{stylesheet}.{size}.s{seed}"
        elif family == "auction":
            xml = make_auction_xml(rng, n_items=size, n_people=max(4, size // 3))
            ops = XMARK_QUERIES
            label = name or f"xalancbmk.xmark.{size}.s{seed}"
        else:
            raise ValueError(f"unknown family {family!r}")
        return workload(
            self.benchmark,
            label,
            XalanInput(xml=xml, ops=ops, repeats=repeats),
            kind=WorkloadKind.DERIVED,
            seed=seed,
            family=family,
            stylesheet=stylesheet if family == "records" else "xmark-18",
            size=size,
            repeats=repeats,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Eight workloads as in Table II: 5 Alberta + 3 SPEC-like."""
        ws = WorkloadSet(self.benchmark)
        spec = [
            ("auction", "identity", 240, 3, "xalancbmk.refrate"),
            ("records", "identity", 300, 2, "xalancbmk.train"),
            ("records", "identity", 60, 1, "xalancbmk.test"),
        ]
        alberta = [
            ("records", "sortkey", 500, 8, "xalancbmk.alberta.xsltmark-sort"),
            ("records", "compute", 600, 8, "xalancbmk.alberta.xsltmark-compute"),
            ("records", "stringy", 400, 8, "xalancbmk.alberta.xsltmark-string"),
            ("records", "identity", 900, 1, "xalancbmk.alberta.xsltmark-large"),
            ("auction", "identity", 160, 4, "xalancbmk.alberta.xmark-combined"),
        ]
        for i, (family, stylesheet, size, repeats, label) in enumerate(spec + alberta):
            w = self.generate(
                base_seed + i * 53,
                family=family,
                stylesheet=stylesheet,
                size=size,
                repeats=repeats,
                name=label,
            )
            kind = WorkloadKind.SPEC if i < len(spec) else WorkloadKind.DERIVED
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=kind,
                    seed=w.seed,
                    params=w.params,
                )
            )
        return ws
