"""Workload generator for ``505.mcf_r`` (Section IV-A of the paper).

The paper describes the most elaborate of the Alberta generators:

    "The workload generator for this benchmark ... automatically
    generates a map for a city with various levels of density and
    connectivity and also uses a circadian cycle to schedule the number
    of buses running throughout the day.  Based on this generated map
    the generator then creates schedules that are consistent with the
    constraints expected by the benchmark."

This module reproduces that pipeline:

1. **City map** — terminals placed on a jittered grid; a road network
   connects them with a density/connectivity parameter; travel times
   come from shortest paths over the roads.
2. **Circadian cycle** — a 24-hour demand curve with morning and
   evening peaks decides how many timetabled trips each route runs per
   hour.
3. **Timetable -> MCF** — every trip must be served by exactly one
   vehicle; a vehicle may chain from trip *j* to trip *k* if it can
   *deadhead* from *j*'s end terminal to *k*'s start terminal in time.
   The single-depot vehicle-scheduling problem becomes a min-cost-flow
   instance via the standard lower-bound elimination (trip j's start
   node demands one unit, its end node supplies one), with pull-out /
   pull-in arcs to the depot carrying the fleet cost.

The paper notes their *initial effort failed badly and led the
benchmark to failed states* — consistency matters.  The construction
here is feasible by design (every trip can always pull out from and
pull in to the depot), which :class:`~repro.benchmarks.mcf.McfBenchmark`
verifies on every run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..core.registry import register_generator
from ..benchmarks.mcf import McfInstance
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import make_rng, workload

__all__ = ["CityMap", "Trip", "McfWorkloadGenerator", "build_city", "build_timetable"]

#: Relative bus frequency per hour of day: low overnight, morning and
#: evening commute peaks — the "circadian cycle" of the paper.
CIRCADIAN = (
    1, 1, 1, 1, 2, 4, 8, 10, 9, 6, 5, 5,
    6, 5, 5, 6, 8, 10, 9, 6, 4, 3, 2, 1,
)

_MINUTES_PER_UNIT = 2  # map-distance -> travel-time scale


@dataclass(frozen=True)
class CityMap:
    """Terminals, road adjacency, and all-pairs travel times (minutes)."""

    n_terminals: int
    positions: tuple[tuple[int, int], ...]
    roads: tuple[tuple[int, int], ...]
    travel_time: tuple[tuple[int, ...], ...]
    depot: int


@dataclass(frozen=True)
class Trip:
    """One timetabled trip: route endpoints and times (minutes from 0h)."""

    start_terminal: int
    end_terminal: int
    start_time: int
    end_time: int


def build_city(
    rng,
    *,
    n_terminals: int = 12,
    density: float = 0.5,
    connectivity: float = 0.3,
) -> CityMap:
    """Generate a city map with the paper's density/connectivity knobs.

    ``density`` shrinks the map (terminals closer together => shorter
    deadheads); ``connectivity`` adds extra roads beyond the spanning
    backbone (more direct paths => more trip-chaining opportunities).
    """
    if n_terminals < 2:
        raise ValueError("need at least two terminals")
    if not 0.0 <= connectivity <= 1.0:
        raise ValueError("connectivity must be in [0, 1]")
    if density <= 0.0:
        raise ValueError("density must be positive")

    span = max(4, int(40 / density))
    positions = tuple(
        (rng.randrange(span), rng.randrange(span)) for _ in range(n_terminals)
    )

    # spanning backbone: connect each terminal to its nearest earlier one
    roads: set[tuple[int, int]] = set()
    for i in range(1, n_terminals):
        best_j = min(
            range(i),
            key=lambda j: abs(positions[i][0] - positions[j][0])
            + abs(positions[i][1] - positions[j][1]),
        )
        roads.add((min(i, best_j), max(i, best_j)))
    # extra roads per connectivity
    n_extra = int(connectivity * n_terminals * (n_terminals - 1) / 4)
    for _ in range(n_extra):
        i, j = rng.randrange(n_terminals), rng.randrange(n_terminals)
        if i != j:
            roads.add((min(i, j), max(i, j)))

    # all-pairs travel times by Dijkstra over road lengths
    adj: dict[int, list[tuple[int, int]]] = {i: [] for i in range(n_terminals)}
    for i, j in roads:
        dist = (
            abs(positions[i][0] - positions[j][0])
            + abs(positions[i][1] - positions[j][1])
        ) or 1
        minutes = dist * _MINUTES_PER_UNIT
        adj[i].append((j, minutes))
        adj[j].append((i, minutes))

    times: list[tuple[int, ...]] = []
    for src in range(n_terminals):
        dist = [10**9] * n_terminals
        dist[src] = 0
        heap = [(0, src)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        times.append(tuple(dist))

    return CityMap(
        n_terminals=n_terminals,
        positions=positions,
        roads=tuple(sorted(roads)),
        travel_time=tuple(times),
        depot=0,
    )


def build_timetable(
    rng,
    city: CityMap,
    *,
    n_routes: int = 6,
    service_level: float = 1.0,
) -> list[Trip]:
    """Timetable trips over the day following the circadian cycle.

    Each route is a (start, end) terminal pair; each hour it runs a
    number of trips proportional to :data:`CIRCADIAN` scaled by
    ``service_level``.
    """
    if n_routes < 1:
        raise ValueError("need at least one route")
    routes = []
    for _ in range(n_routes):
        a = rng.randrange(city.n_terminals)
        b = rng.randrange(city.n_terminals)
        while b == a:
            b = rng.randrange(city.n_terminals)
        routes.append((a, b))

    trips: list[Trip] = []
    for hour, level in enumerate(CIRCADIAN):
        expected = level * service_level * n_routes / 10.0
        n_trips = int(expected)
        if rng.random() < expected - n_trips:
            n_trips += 1
        for _ in range(n_trips):
            a, b = routes[rng.randrange(n_routes)]
            depart = hour * 60 + rng.randrange(60)
            duration = max(5, city.travel_time[a][b])
            trips.append(Trip(a, b, depart, depart + duration))
    trips.sort(key=lambda t: t.start_time)
    return trips


def timetable_to_mcf(
    city: CityMap,
    trips: list[Trip],
    *,
    vehicle_cost: int = 500,
    deadhead_cost_per_minute: int = 2,
    max_chain_candidates: int = 12,
) -> McfInstance:
    """Encode single-depot vehicle scheduling as min-cost flow.

    Node layout: ``2k`` = start node of trip ``k`` (demand 1), ``2k+1``
    = end node (supply 1), last node = depot (balance 0).  Arcs:
    pull-out depot->start (vehicle cost), pull-in end->depot, and
    deadhead end_j->start_k for time-feasible pairs (at most
    ``max_chain_candidates`` successors per trip, nearest-departure
    first, as real schedulers prune).
    """
    if not trips:
        raise ValueError("timetable is empty")
    n_trips = len(trips)
    depot = 2 * n_trips
    supplies = [0] * (2 * n_trips + 1)
    arcs: list[tuple[int, int, int, int]] = []
    for k, trip in enumerate(trips):
        supplies[2 * k] = -1
        supplies[2 * k + 1] = 1
        pull_out = city.travel_time[city.depot][trip.start_terminal]
        pull_in = city.travel_time[trip.end_terminal][city.depot]
        arcs.append((depot, 2 * k, 1, vehicle_cost + pull_out * deadhead_cost_per_minute))
        arcs.append((2 * k + 1, depot, 1, pull_in * deadhead_cost_per_minute))
    for j, tj in enumerate(trips):
        added = 0
        for k in range(j + 1, n_trips):
            tk = trips[k]
            gap = tk.start_time - tj.end_time
            if gap < 0:
                continue
            deadhead = city.travel_time[tj.end_terminal][tk.start_terminal]
            if deadhead <= gap:
                arcs.append(
                    (2 * j + 1, 2 * k, 1, deadhead * deadhead_cost_per_minute + gap // 4)
                )
                added += 1
                if added >= max_chain_candidates:
                    break
    return McfInstance(
        n_nodes=2 * n_trips + 1,
        supplies=tuple(supplies),
        arcs=tuple(arcs),
    )


@register_generator
class McfWorkloadGenerator:
    """Fully procedural mcf workloads (the paper's PROCEDURAL class)."""

    benchmark = "505.mcf_r"

    def generate(
        self,
        seed: int,
        *,
        n_terminals: int = 12,
        n_routes: int = 6,
        density: float = 0.5,
        connectivity: float = 0.3,
        service_level: float = 1.0,
        name: str | None = None,
    ) -> Workload:
        rng = make_rng(seed)
        city = build_city(
            rng, n_terminals=n_terminals, density=density, connectivity=connectivity
        )
        trips = build_timetable(rng, city, n_routes=n_routes, service_level=service_level)
        if not trips:
            raise ValueError("generated timetable is empty; raise service_level")
        instance = timetable_to_mcf(city, trips)
        return workload(
            self.benchmark,
            name or f"mcf.alberta.s{seed}",
            instance,
            kind=WorkloadKind.PROCEDURAL,
            seed=seed,
            n_terminals=n_terminals,
            n_routes=n_routes,
            density=density,
            connectivity=connectivity,
            service_level=service_level,
            n_trips=len(trips),
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Seven workloads as in Table II: 3 Alberta + 4 SPEC-like.

        The three Alberta workloads vary density and connectivity, as
        the paper describes ("various levels of density and
        connectivity").
        """
        ws = WorkloadSet(self.benchmark)
        configs = [
            # (terminals, routes, density, connectivity, service, kind, name)
            (12, 6, 0.5, 0.3, 1.0, WorkloadKind.SPEC, "mcf.refrate"),
            (10, 5, 0.5, 0.3, 0.7, WorkloadKind.SPEC, "mcf.train"),
            (8, 4, 0.5, 0.3, 0.4, WorkloadKind.SPEC, "mcf.test"),
            (10, 5, 0.5, 0.3, 0.9, WorkloadKind.SPEC, "mcf.refspeed"),
            (14, 7, 0.8, 0.6, 1.0, WorkloadKind.PROCEDURAL, "mcf.alberta.dense"),
            (14, 7, 0.25, 0.1, 1.0, WorkloadKind.PROCEDURAL, "mcf.alberta.sparse"),
            (16, 8, 0.5, 0.9, 1.2, WorkloadKind.PROCEDURAL, "mcf.alberta.connected"),
        ]
        for i, (terms, routes, dens, conn, service, kind, label) in enumerate(configs):
            w = self.generate(
                base_seed + i * 71,
                n_terminals=terms,
                n_routes=routes,
                density=dens,
                connectivity=conn,
                service_level=service,
                name=label,
            )
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=kind,
                    seed=w.seed,
                    params=w.params,
                )
            )
        return ws
