"""Workload generator for ``510.parest_r``.

Table II lists eight parest workloads (the paper's Section IV does not
detail this benchmark; its workloads vary the finite-element problem
definition).  The natural axes for a FEM parameter-estimation code are
mesh resolution, solver tolerance, and the diffusion-coefficient
field; this generator provides all three.
"""

from __future__ import annotations

from ..core.registry import register_generator
from ..benchmarks.parest import ParestInput
from ..core.workload import Workload, WorkloadKind, WorkloadSet
from .base import workload

__all__ = ["ParestWorkloadGenerator"]


@register_generator
class ParestWorkloadGenerator:
    """Mesh / tolerance / coefficient-field variations."""

    benchmark = "510.parest_r"

    def generate(
        self,
        seed: int,
        *,
        mesh: int = 20,
        tolerance: float = 1e-8,
        coefficient_kind: str = "smooth",
        estimate: bool = False,
        name: str | None = None,
    ) -> Workload:
        payload = ParestInput(
            mesh=mesh,
            tolerance=tolerance,
            coefficient_kind=coefficient_kind,
            estimate=estimate,
        )
        return workload(
            self.benchmark,
            name or f"parest.s{seed}",
            payload,
            kind=WorkloadKind.MANUAL,
            seed=seed,
            mesh=mesh,
            tolerance=tolerance,
            coefficient_kind=coefficient_kind,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        """Eight workloads as in Table II: 5 Alberta + 3 SPEC-like."""
        ws = WorkloadSet(self.benchmark)
        configs = [
            # the refrate run performs the full inverse problem, as the
            # real parest does; smaller runs are single forward solves
            (20, 1e-8, "smooth", True, WorkloadKind.SPEC, "parest.refrate"),
            (16, 1e-7, "smooth", False, WorkloadKind.SPEC, "parest.train"),
            (8, 1e-6, "smooth", False, WorkloadKind.SPEC, "parest.test"),
            (28, 1e-8, "checker", False, WorkloadKind.MANUAL, "parest.alberta.checker"),
            (28, 1e-8, "spike", False, WorkloadKind.MANUAL, "parest.alberta.spike"),
            (36, 1e-7, "smooth", False, WorkloadKind.MANUAL, "parest.alberta.fine"),
            (20, 1e-10, "smooth", False, WorkloadKind.MANUAL, "parest.alberta.tight"),
            (16, 1e-6, "checker", True, WorkloadKind.MANUAL, "parest.alberta.estimate"),
        ]
        for i, (mesh, tol, coef, estimate, kind, label) in enumerate(configs):
            w = self.generate(
                base_seed + i,
                mesh=mesh,
                tolerance=tol,
                coefficient_kind=coef,
                estimate=estimate,
                name=label,
            )
            ws.add(
                Workload(
                    name=w.name,
                    benchmark=w.benchmark,
                    payload=w.payload,
                    kind=kind,
                    seed=w.seed,
                    params=w.params,
                )
            )
        return ws
