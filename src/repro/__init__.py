"""repro — The Alberta Workloads for the SPEC CPU 2017 Benchmark Suite.

A from-scratch Python reproduction of Amaral et al., ISPASS 2018:
mini-benchmark substrates for the SPEC CPU 2017 programs, the Alberta
workload generators, a deterministic machine model providing Intel
top-down-style cycle accounting, the paper's characterization
statistics (Equations 1-5), and an FDO evaluation framework.

Quick start::

    from repro import characterize, render_table2

    char = characterize("557.xz_r")
    print(char.mu_g_v, char.mu_g_m)
"""

from .analysis import (
    render_figure1,
    render_figure2,
    render_table1,
    render_table2,
    sensitivity_report,
)
from .core import (
    BenchmarkCharacterization,
    CharacterizationEngine,
    CoverageProfile,
    ResultCache,
    TopDownVector,
    Workload,
    WorkloadSet,
    alberta_workloads,
    benchmark_ids,
    benchmark_report,
    characterize,
    characterize_suite,
    get_benchmark,
    get_generator,
    validate_workload_set,
)
from .machine import MachineConfig, Probe, Profiler, run_benchmark

__version__ = "1.0.0"

__all__ = [
    "render_figure1",
    "render_figure2",
    "render_table1",
    "render_table2",
    "sensitivity_report",
    "BenchmarkCharacterization",
    "CharacterizationEngine",
    "CoverageProfile",
    "ResultCache",
    "TopDownVector",
    "Workload",
    "WorkloadSet",
    "alberta_workloads",
    "benchmark_ids",
    "benchmark_report",
    "characterize",
    "characterize_suite",
    "get_benchmark",
    "get_generator",
    "validate_workload_set",
    "MachineConfig",
    "Probe",
    "Profiler",
    "run_benchmark",
    "__version__",
]
