"""Table renderers for the paper's Table I and Table II.

Each renderer returns both structured rows (for programmatic checks)
and a formatted text table (for humans), mirroring the layout of the
paper's tables.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.characterize import BenchmarkCharacterization
from ..spec.history import mean_time_2006, mean_time_2017
from ..spec.spec2017 import TABLE1_ROWS

__all__ = ["table1_rows", "render_table1", "table2_rows", "render_table2"]


def table1_rows() -> list[dict]:
    """Table I as structured rows, with the arithmetic-mean footer."""
    rows = [
        {
            "area": r.area,
            "spec2017": r.spec2017 or "",
            "spec2006": r.spec2006 or "",
            "time2017": r.time2017,
            "time2006": r.time2006,
        }
        for r in TABLE1_ROWS
    ]
    rows.append(
        {
            "area": "Arithmetic Average of Times",
            "spec2017": "",
            "spec2006": "",
            "time2017": round(mean_time_2017()),
            "time2006": round(mean_time_2006()),
        }
    )
    return rows


def render_table1() -> str:
    """Format Table I as fixed-width text."""
    header = f"{'Application Area':<32} {'SPEC 2017':<16} {'SPEC 2006':<15} {'2017s':>6} {'2006s':>6}"
    lines = [header, "-" * len(header)]
    for row in table1_rows():
        t17 = str(row["time2017"]) if row["time2017"] is not None else ""
        t06 = str(row["time2006"]) if row["time2006"] is not None else ""
        lines.append(
            f"{row['area']:<32} {row['spec2017']:<16} {row['spec2006']:<15} {t17:>6} {t06:>6}"
        )
    return "\n".join(lines)


def table2_rows(
    characterizations: Sequence[BenchmarkCharacterization],
) -> list[dict]:
    """Table II as structured rows (sorted by benchmark id)."""
    return [
        c.table2_row()
        for c in sorted(characterizations, key=lambda c: c.benchmark_id)
    ]


def render_table2(characterizations: Sequence[BenchmarkCharacterization]) -> str:
    """Format Table II as fixed-width text matching the paper's layout."""
    header = (
        f"{'Benchmark':<17} {'#wl':>3} "
        f"{'f mu':>6} {'f sg':>5} {'b mu':>6} {'b sg':>5} "
        f"{'s mu':>6} {'s sg':>5} {'r mu':>6} {'r sg':>5} "
        f"{'mu_g(V)':>8} {'mu_g(M)':>8} {'refrate(s)':>11}"
    )
    lines = [header, "-" * len(header)]
    for row in table2_rows(characterizations):
        refrate = row["refrate_seconds"]
        refrate_text = f"{refrate:>11.4f}" if refrate is not None else f"{'n/a':>11}"
        lines.append(
            f"{row['benchmark']:<17} {row['n_workloads']:>3} "
            f"{row['f_mu_g']:>6.1f} {row['f_sigma_g']:>5.1f} "
            f"{row['b_mu_g']:>6.1f} {row['b_sigma_g']:>5.1f} "
            f"{row['s_mu_g']:>6.1f} {row['s_sigma_g']:>5.1f} "
            f"{row['r_mu_g']:>6.1f} {row['r_sigma_g']:>5.1f} "
            f"{row['mu_g_v']:>8.1f} {row['mu_g_m']:>8.1f} "
            f"{refrate_text}"
        )
    return "\n".join(lines)
