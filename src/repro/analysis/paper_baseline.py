"""The paper's published Table II, and measured-vs-paper comparison.

Holding the published numbers as data makes "the shape holds" a
computable claim: per-column Spearman rank correlations between the
paper's fifteen benchmarks and our measured characterizations, plus
named headline findings (who is highest per column).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.characterize import BenchmarkCharacterization

__all__ = ["PaperRow", "PAPER_TABLE2", "spearman", "compare_to_paper"]


@dataclass(frozen=True)
class PaperRow:
    """One published Table II row (mu_g percentages; sigma_g raw)."""

    benchmark: str
    n_workloads: int
    f_mu: float
    f_sigma: float
    b_mu: float
    b_sigma: float
    s_mu: float
    s_sigma: float
    r_mu: float
    r_sigma: float
    mu_g_v: float
    mu_g_m: float
    refrate_seconds: int


#: Table II of the paper, verbatim.
PAPER_TABLE2: tuple[PaperRow, ...] = (
    PaperRow("502.gcc_r", 19, 23.4, 1.2, 33.6, 1.2, 11.9, 1.2, 29.5, 1.1, 5.1, 25, 281),
    PaperRow("505.mcf_r", 7, 14.1, 1.8, 44.9, 1.3, 15.3, 1.6, 19.8, 1.2, 6.9, 1, 324),
    PaperRow("507.cactuBSSN_r", 11, 20.4, 1.7, 42.8, 1.4, 0.2, 1.3, 31.0, 1.1, 17.1, 1, 355),
    PaperRow("510.parest_r", 8, 12.4, 1.1, 26.0, 1.2, 6.9, 1.3, 53.7, 1.1, 6.2, 5, 449),
    PaperRow("511.povray_r", 10, 9.4, 1.7, 39.7, 1.5, 8.8, 2.2, 32.7, 1.4, 9.2, 66, 535),
    PaperRow("519.lbm_r", 30, 1.9, 1.8, 61.2, 1.1, 0.4, 3.3, 34.1, 1.3, 27.4, 59, 260),
    PaperRow("520.omnetpp_r", 10, 9.1, 1.2, 64.7, 1.1, 8.1, 1.1, 17.4, 1.2, 6.8, 17, 577),
    PaperRow("521.wrf_r", 16, 7.1, 1.4, 54.9, 1.1, 4.3, 1.3, 32.2, 1.0, 7.8, 4, 904),
    PaperRow("523.xalancbmk_r", 8, 13.4, 1.8, 42.7, 1.4, 2.3, 2.4, 33.7, 1.4, 11.8, 108, 263),
    PaperRow("526.blender_r", 16, 17.1, 1.6, 25.9, 1.4, 11.3, 1.8, 41.1, 1.1, 6.7, 44, 162),
    PaperRow("531.deepsjeng_r", 12, 19.1, 1.1, 27.4, 1.2, 11.5, 1.1, 41.2, 1.1, 5.0, 1, 316),
    PaperRow("541.leela_r", 12, 16.9, 1.1, 23.0, 1.1, 27.6, 1.1, 32.2, 1.0, 4.3, 1, 484),
    PaperRow("544.nab_r", 11, 3.6, 1.4, 55.3, 1.1, 7.5, 1.3, 33.0, 1.0, 7.9, 2, 476),
    PaperRow("548.exchange2_r", 13, 13.9, 1.0, 22.4, 1.0, 5.1, 1.1, 58.6, 1.0, 5.9, 1, 920),
    PaperRow("557.xz_r", 12, 11.7, 1.1, 42.8, 1.2, 16.5, 1.3, 27.2, 1.2, 5.5, 23, 352),
)


def spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation between two equal-length sequences."""
    if len(a) != len(b) or len(a) < 2:
        raise ValueError("spearman: need two equal sequences of length >= 2")

    def _ranks(values: Sequence[float]) -> list[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        ranks = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
                j += 1
            mean_rank = (i + j) / 2 + 1
            for k in range(i, j + 1):
                ranks[order[k]] = mean_rank
            i = j + 1
        return ranks

    ra, rb = _ranks(a), _ranks(b)
    mean_a = sum(ra) / len(ra)
    mean_b = sum(rb) / len(rb)
    cov = sum((x - mean_a) * (y - mean_b) for x, y in zip(ra, rb))
    var_a = sum((x - mean_a) ** 2 for x in ra)
    var_b = sum((y - mean_b) ** 2 for y in rb)
    if var_a == 0 or var_b == 0:
        return 0.0
    return cov / (var_a * var_b) ** 0.5


_COLUMNS = (
    ("f_mu", "front_end"),
    ("b_mu", "back_end"),
    ("s_mu", "bad_speculation"),
    ("r_mu", "retiring"),
)


def compare_to_paper(
    characterizations: Sequence[BenchmarkCharacterization],
) -> dict[str, float | dict[str, str]]:
    """Rank-correlate measured columns against the published table.

    Returns per-column Spearman coefficients plus the "who leads each
    column" agreement record.  Only benchmarks present in both sets are
    compared.
    """
    paper_by_id = {row.benchmark: row for row in PAPER_TABLE2}
    common = [c for c in characterizations if c.benchmark_id in paper_by_id]
    if len(common) < 3:
        raise ValueError("compare_to_paper: need at least three common benchmarks")

    result: dict[str, float | dict[str, str]] = {}
    for paper_attr, category in _COLUMNS:
        paper_vals = [getattr(paper_by_id[c.benchmark_id], paper_attr) for c in common]
        ours = [c.topdown.mu_g(category) * 100 for c in common]
        result[f"spearman_{paper_attr}"] = spearman(paper_vals, ours)
    paper_v = [paper_by_id[c.benchmark_id].mu_g_v for c in common]
    paper_m = [paper_by_id[c.benchmark_id].mu_g_m for c in common]
    result["spearman_mu_g_v"] = spearman(paper_v, [c.mu_g_v for c in common])
    result["spearman_mu_g_m"] = spearman(paper_m, [c.mu_g_m for c in common])

    def _leader(values: dict[str, float]) -> str:
        return max(values, key=values.get)

    leaders: dict[str, str] = {}
    for paper_attr, category in _COLUMNS:
        paper_leader = _leader(
            {c.benchmark_id: getattr(paper_by_id[c.benchmark_id], paper_attr) for c in common}
        )
        our_leader = _leader({c.benchmark_id: c.topdown.mu_g(category) for c in common})
        leaders[paper_attr] = f"paper={paper_leader} ours={our_leader}"
    leaders["mu_g_m"] = (
        f"paper={_leader({c.benchmark_id: paper_by_id[c.benchmark_id].mu_g_m for c in common})} "
        f"ours={_leader({c.benchmark_id: c.mu_g_m for c in common})}"
    )
    result["leaders"] = leaders
    return result
