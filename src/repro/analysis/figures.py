"""Figure data + ASCII rendering for the paper's Figures 1 and 2.

* **Figure 1** — per-workload stacked top-down bars (front-end /
  back-end / bad-speculation / retiring), shown in the paper for
  ``523.xalancbmk_r`` (high variation) vs ``557.xz_r`` (low).
* **Figure 2** — per-workload function-coverage bars, shown for
  ``531.deepsjeng_r`` vs ``557.xz_r``.

Each builder returns the plotted series as data; ``render_*`` draws a
text approximation so the figures regenerate without a display.
"""

from __future__ import annotations

from ..core.characterize import BenchmarkCharacterization
from ..core.coverage import OTHERS_LABEL
from ..core.topdown import CATEGORIES

__all__ = [
    "figure1_series",
    "render_figure1",
    "figure2_series",
    "render_figure2",
]

_CAT_GLYPH = {"front_end": "F", "back_end": "B", "bad_speculation": "S", "retiring": "R"}


def figure1_series(char: BenchmarkCharacterization) -> dict:
    """Figure 1 data: per-workload top-down fractions.

    Returns {"benchmark", "workloads": [...], "categories": {cat: [...]}}
    with one value per workload per category.
    """
    workloads = [p.workload for p in char.profiles]
    if not workloads:
        raise ValueError(
            "figure1_series needs profiles; characterize with keep_profiles=True"
        )
    categories = {
        cat: [getattr(p.topdown, cat) for p in char.profiles] for cat in CATEGORIES
    }
    return {
        "benchmark": char.benchmark_id,
        "workloads": workloads,
        "categories": categories,
    }


def render_figure1(char: BenchmarkCharacterization, width: int = 50) -> str:
    """Stacked horizontal bars, one row per workload."""
    series = figure1_series(char)
    lines = [f"Figure 1 — top-down breakdown: {series['benchmark']}"]
    lines.append(f"{'workload':<36} " + "".join(f"[{_CAT_GLYPH[c]}]" for c in CATEGORIES))
    for i, wl in enumerate(series["workloads"]):
        bar = ""
        for cat in CATEGORIES:
            frac = series["categories"][cat][i]
            bar += _CAT_GLYPH[cat] * max(0, round(frac * width))
        lines.append(f"{wl:<36} {bar[:width]}")
    return "\n".join(lines)


def figure2_series(char: BenchmarkCharacterization, top_n: int = 8) -> dict:
    """Figure 2 data: per-workload coverage of the top methods.

    Methods are ranked by their peak fraction across workloads; the
    remainder is folded into ``others``.
    """
    if not char.profiles:
        raise ValueError(
            "figure2_series needs profiles; characterize with keep_profiles=True"
        )
    peak: dict[str, float] = {}
    for p in char.profiles:
        for m, frac in p.coverage.fractions.items():
            peak[m] = max(peak.get(m, 0.0), frac)
    ranked = sorted(peak, key=lambda m: -peak[m])
    top = ranked[:top_n]
    rest = set(ranked[top_n:])
    workloads = [p.workload for p in char.profiles]
    methods: dict[str, list[float]] = {m: [] for m in top}
    methods[OTHERS_LABEL] = []
    for p in char.profiles:
        for m in top:
            methods[m].append(p.coverage.fraction(m))
        methods[OTHERS_LABEL].append(sum(p.coverage.fraction(m) for m in rest))
    return {
        "benchmark": char.benchmark_id,
        "workloads": workloads,
        "methods": methods,
    }


def render_figure2(char: BenchmarkCharacterization, top_n: int = 6, width: int = 40) -> str:
    """Per-method coverage bars grouped by workload."""
    series = figure2_series(char, top_n)
    lines = [f"Figure 2 — method coverage: {series['benchmark']}"]
    method_names = list(series["methods"])
    for i, wl in enumerate(series["workloads"]):
        lines.append(wl)
        for m in method_names:
            frac = series["methods"][m][i]
            bar = "#" * max(0, round(frac * width))
            lines.append(f"  {m:<24} {bar} {frac * 100:5.1f}%")
    return "\n".join(lines)
