"""Bundle exporter: write the full result package to a directory.

The Alberta Workloads are distributed with "an extensive amount of
data and analysis" per benchmark.  :func:`export_bundle` regenerates
that distribution layout for this reproduction:

```
<out>/
  table1.txt            Table I
  table2.txt            Table II over the selected benchmarks
  table2.json           same, machine-readable rows
  sensitivity.txt       ranking + caveats
  comparison.json       rank correlations vs the published table
  reports/<bench>.txt   per-benchmark report
  figures/<bench>.fig1.txt / .fig2.txt
```
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from ..core.characterize import BenchmarkCharacterization, characterize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.cache import ResultCache
from ..core.registry import benchmark_ids
from .figures import render_figure1, render_figure2
from .paper_baseline import compare_to_paper
from .sensitivity import sensitivity_report
from .tables import render_table1, render_table2, table2_rows
from ..core.reports import benchmark_report

__all__ = ["export_bundle"]


def export_bundle(
    out_dir: str | Path,
    ids: list[str] | None = None,
    *,
    base_seed: int = 0,
    workers: int | None = 1,
    cache: "ResultCache | str | Path | None" = None,
) -> dict[str, int]:
    """Characterize ``ids`` (default: all Table II rows) and write the
    distribution bundle; returns {artifact kind: count written}.

    ``workers``/``cache`` are forwarded to :func:`characterize` — the
    bundle is the prime warm-cache beneficiary, since it re-runs the
    exact Table II matrix that a prior ``table2`` already profiled.
    """
    out = Path(out_dir)
    (out / "reports").mkdir(parents=True, exist_ok=True)
    (out / "figures").mkdir(parents=True, exist_ok=True)

    selected = ids or sorted(benchmark_ids(table2_only=True))
    chars: list[BenchmarkCharacterization] = []
    for bid in selected:
        chars.append(
            characterize(
                bid,
                base_seed=base_seed,
                keep_profiles=True,
                workers=workers,
                cache=cache,
            )
        )

    (out / "table1.txt").write_text(render_table1() + "\n")
    (out / "table2.txt").write_text(render_table2(chars) + "\n")
    (out / "table2.json").write_text(
        json.dumps(table2_rows(chars), indent=2, sort_keys=True) + "\n"
    )
    (out / "sensitivity.txt").write_text(sensitivity_report(chars) + "\n")

    counts = {"tables": 3, "reports": 0, "figures": 0}
    try:
        comparison = compare_to_paper(chars)
    except ValueError:
        pass  # fewer than three Table II benchmarks selected
    else:
        (out / "comparison.json").write_text(
            json.dumps(comparison, indent=2, sort_keys=True) + "\n"
        )
        counts["tables"] += 1

    for char in chars:
        stem = char.benchmark_id.replace("/", "_")
        (out / "reports" / f"{stem}.txt").write_text(benchmark_report(char) + "\n")
        counts["reports"] += 1
        (out / "figures" / f"{stem}.fig1.txt").write_text(render_figure1(char) + "\n")
        (out / "figures" / f"{stem}.fig2.txt").write_text(render_figure2(char) + "\n")
        counts["figures"] += 2
    return counts
