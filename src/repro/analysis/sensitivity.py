"""Sensitivity ranking and the paper's summarization caveats.

Section V-B warns that ``mu_g(V)`` is only a *proxy* for workload
sensitivity: a category with a tiny geometric mean and a large
geometric standard deviation (lbm's 0.4% bad speculation with
sigma_g = 3.3, and similarly cactuBSSN) inflates the single number
without reflecting real behavioural variation.  This module ranks
benchmarks by their sensitivity scores and flags exactly that
distortion so users "look into the data".
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.characterize import BenchmarkCharacterization
from ..core.topdown import CATEGORIES

__all__ = ["Caveat", "detect_caveats", "rank_by_mu_g_v", "rank_by_mu_g_m", "sensitivity_report"]

#: A category mean below this fraction is "small" for caveat purposes.
SMALL_MEAN = 0.02
#: A geometric standard deviation above this is "large".
LARGE_SIGMA = 1.8


@dataclass(frozen=True)
class Caveat:
    """One small-mean/large-sigma distortion flag."""

    benchmark_id: str
    category: str
    mu_g: float
    sigma_g: float

    def describe(self) -> str:
        return (
            f"{self.benchmark_id}: category {self.category!r} has tiny mean "
            f"{self.mu_g * 100:.2f}% with sigma_g {self.sigma_g:.2f} — its "
            f"contribution inflates mu_g(V) without reflecting real variation"
        )


def detect_caveats(
    characterizations: Sequence[BenchmarkCharacterization],
    *,
    small_mean: float = SMALL_MEAN,
    large_sigma: float = LARGE_SIGMA,
) -> list[Caveat]:
    """Find small-mean/large-sigma categories (the lbm/cactuBSSN issue)."""
    flags = []
    for char in characterizations:
        for cat in CATEGORIES:
            mu = char.topdown.mu_g(cat)
            sigma = char.topdown.sigma_g(cat)
            if mu < small_mean and sigma > large_sigma:
                flags.append(
                    Caveat(
                        benchmark_id=char.benchmark_id,
                        category=cat,
                        mu_g=mu,
                        sigma_g=sigma,
                    )
                )
    return flags


def rank_by_mu_g_v(
    characterizations: Sequence[BenchmarkCharacterization],
) -> list[tuple[str, float]]:
    """Benchmarks ranked by top-down sensitivity, most sensitive first."""
    return sorted(
        ((c.benchmark_id, c.mu_g_v) for c in characterizations),
        key=lambda kv: -kv[1],
    )


def rank_by_mu_g_m(
    characterizations: Sequence[BenchmarkCharacterization],
) -> list[tuple[str, float]]:
    """Benchmarks ranked by method-coverage sensitivity."""
    return sorted(
        ((c.benchmark_id, c.mu_g_m) for c in characterizations),
        key=lambda kv: -kv[1],
    )


def sensitivity_report(characterizations: Sequence[BenchmarkCharacterization]) -> str:
    """Human-readable sensitivity ranking with caveat annotations."""
    caveats = detect_caveats(characterizations)
    flagged = {c.benchmark_id for c in caveats}
    lines = ["Workload-sensitivity ranking (mu_g(V); * = small-mean caveat)"]
    for bid, value in rank_by_mu_g_v(characterizations):
        mark = " *" if bid in flagged else ""
        lines.append(f"  {bid:<18} {value:7.2f}{mark}")
    lines.append("")
    lines.append("Method-coverage ranking (mu_g(M))")
    for bid, value in rank_by_mu_g_m(characterizations):
        lines.append(f"  {bid:<18} {value:7.2f}")
    if caveats:
        lines.append("")
        lines.append("Caveats:")
        for caveat in caveats:
            lines.append(f"  - {caveat.describe()}")
    return "\n".join(lines)
