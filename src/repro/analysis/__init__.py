"""Analysis: table/figure regeneration and sensitivity summaries."""

from .figures import figure1_series, figure2_series, render_figure1, render_figure2
from .sensitivity import (
    Caveat,
    detect_caveats,
    rank_by_mu_g_m,
    rank_by_mu_g_v,
    sensitivity_report,
)
from .tables import render_table1, render_table2, table1_rows, table2_rows

__all__ = [
    "figure1_series",
    "figure2_series",
    "render_figure1",
    "render_figure2",
    "Caveat",
    "detect_caveats",
    "rank_by_mu_g_m",
    "rank_by_mu_g_v",
    "sensitivity_report",
    "render_table1",
    "render_table2",
    "table1_rows",
    "table2_rows",
]
