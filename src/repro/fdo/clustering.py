"""Workload clustering for profile-set reduction (Berube & Amaral, CGO'09).

When a development group has too many workloads to profile, clustering
selects a representative subset.  Each workload becomes a feature
vector (top-down fractions, hot-method coverage, misprediction and
miss rates); seeded k-means groups them; the workload closest to each
centroid represents its cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import StudyError
from ..machine.profiler import ExecutionProfile

__all__ = ["WorkloadFeatures", "feature_matrix", "kmeans", "cluster_workloads"]


@dataclass(frozen=True)
class WorkloadFeatures:
    """One workload's behaviour vector."""

    workload: str
    vector: np.ndarray


def feature_matrix(profiles: list[ExecutionProfile]) -> list[WorkloadFeatures]:
    """Build aligned feature vectors from execution profiles.

    Features: the four top-down fractions, branch-misprediction rate,
    estimated data-miss rate, and the coverage of every method observed
    in *any* profile (zero where absent), z-normalized per column.
    """
    if not profiles:
        raise StudyError("feature_matrix: need at least one profile")
    methods: set[str] = set()
    for p in profiles:
        methods.update(p.coverage.fractions.keys())
    method_list = sorted(methods)

    raw = []
    for p in profiles:
        td = p.topdown
        counters = p.report.counters
        accesses = max(1.0, counters.get("data_accesses", 1.0))
        vec = [
            td.front_end,
            td.back_end,
            td.bad_speculation,
            td.retiring,
            p.report.branch_misprediction_rate,
            counters.get("est_data_misses", 0.0) / accesses,
        ]
        vec.extend(p.coverage.fraction(m) for m in method_list)
        raw.append(vec)
    matrix = np.array(raw)
    std = matrix.std(axis=0)
    std[std == 0] = 1.0
    matrix = (matrix - matrix.mean(axis=0)) / std
    return [
        WorkloadFeatures(workload=p.workload, vector=matrix[i])
        for i, p in enumerate(profiles)
    ]


def kmeans(
    vectors: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    max_iter: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded k-means; returns (assignments, centroids)."""
    n = vectors.shape[0]
    if not 1 <= k <= n:
        raise StudyError(f"kmeans: k must be in [1, {n}]")
    rng = np.random.default_rng(seed)
    # k-means++ style seeding: first random, then farthest-point
    centroids = [vectors[rng.integers(n)]]
    while len(centroids) < k:
        dists = np.min(
            [np.sum((vectors - c) ** 2, axis=1) for c in centroids], axis=0
        )
        centroids.append(vectors[int(np.argmax(dists))])
    centers = np.array(centroids)

    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(max_iter):
        dists = np.stack([np.sum((vectors - c) ** 2, axis=1) for c in centers])
        new_assignments = np.argmin(dists, axis=0)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for j in range(k):
            members = vectors[assignments == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return assignments, centers


def cluster_workloads(
    profiles: list[ExecutionProfile],
    k: int,
    *,
    seed: int = 0,
) -> dict[str, list[str]]:
    """Cluster workloads and pick one representative per cluster.

    Returns {representative workload name: [member names]}.
    """
    features = feature_matrix(profiles)
    vectors = np.stack([f.vector for f in features])
    assignments, centers = kmeans(vectors, k, seed=seed)
    clusters: dict[str, list[str]] = {}
    for j in range(k):
        member_idx = [i for i in range(len(features)) if assignments[i] == j]
        if not member_idx:
            continue
        # representative: member closest to the centroid
        best = min(
            member_idx,
            key=lambda i: float(np.sum((vectors[i] - centers[j]) ** 2)),
        )
        clusters[features[best].workload] = [features[i].workload for i in member_idx]
    return clusters
