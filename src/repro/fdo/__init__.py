"""Feedback-Directed Optimization: profiles, optimizer, evaluation."""

from .clustering import cluster_workloads, feature_matrix, kmeans
from .evaluation import (
    CrossValidationResult,
    FdoResult,
    cross_validate,
    evaluate_pair,
    single_workload_methodology,
    train_profile,
)
from .optimizer import FdoBuild, FdoCostModel, optimize_probe
from .profile_data import FdoProfile, MethodProfile, collect_profile, merge_profiles

__all__ = [
    "cluster_workloads",
    "feature_matrix",
    "kmeans",
    "CrossValidationResult",
    "FdoResult",
    "cross_validate",
    "evaluate_pair",
    "single_workload_methodology",
    "train_profile",
    "FdoBuild",
    "FdoCostModel",
    "optimize_probe",
    "FdoProfile",
    "MethodProfile",
    "collect_profile",
    "merge_profiles",
]
