"""FDO profiles: what an instrumented training run records.

Static FDO (Section II of the paper) collects information from
instrumented executions ahead of time and recompiles with it.  Here a
:class:`FdoProfile` captures, per method: its share of execution time
(drives inlining/layout decisions), its conditional-branch bias
(drives static branch hints), and call counts.  Profiles from multiple
training runs can be merged — the *combined profiling* methodology
Berube proposed for many-input FDO.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from ..core.errors import MachineMismatch, StudyError
from ..machine.cost import MachineConfig
from ..machine.profiler import ExecutionProfile

__all__ = ["MethodProfile", "FdoProfile", "collect_profile", "merge_profiles"]


@dataclass(frozen=True)
class MethodProfile:
    """Training observations for one method."""

    weight: float  # fraction of training execution time
    branch_taken_ratio: float | None  # None when no branches observed
    calls: int
    branches: int


@dataclass(frozen=True)
class FdoProfile:
    """A complete FDO profile from one or more training runs.

    ``machine`` records the configuration the training run was
    evaluated under (``None`` for profiles built before this field or
    straight from raw counters): an FDO comparison is only meaningful
    when the baseline replays under the same config, and
    :func:`~repro.fdo.evaluation.evaluate_pair` enforces that.
    """

    benchmark: str
    methods: Mapping[str, MethodProfile]
    training_workloads: tuple[str, ...] = field(default_factory=tuple)
    machine: MachineConfig | None = None

    def hot_methods(self, threshold: float = 0.05) -> list[str]:
        """Methods above the inlining/layout weight threshold."""
        return sorted(
            (m for m, p in self.methods.items() if p.weight >= threshold),
            key=lambda m: -self.methods[m].weight,
        )

    def branch_hint(self, method: str, confidence: float = 0.85) -> bool | None:
        """Static prediction hint for a method's branches.

        Returns True (predict taken) / False (predict not-taken) when
        the training bias is confident enough, else None (leave the
        dynamic predictor alone).
        """
        prof = self.methods.get(method)
        if prof is None or prof.branch_taken_ratio is None or prof.branches < 16:
            return None
        if prof.branch_taken_ratio >= confidence:
            return True
        if prof.branch_taken_ratio <= 1.0 - confidence:
            return False
        return None


def collect_profile(
    execution: ExecutionProfile,
    probe_methods,
    *,
    machine: MachineConfig | None = None,
) -> FdoProfile:
    """Build a profile from an instrumented run.

    ``probe_methods`` is the list of
    :class:`~repro.machine.telemetry.MethodCounters` from the training
    run's probe (exact per-method branch statistics).  Pass ``machine``
    to stamp the profile with the config the coverage weights were
    computed under.
    """
    coverage = execution.coverage
    methods: dict[str, MethodProfile] = {}
    for mc in probe_methods:
        taken_ratio = mc.branches_taken / mc.branches if mc.branches else None
        methods[mc.name] = MethodProfile(
            weight=coverage.fraction(mc.name),
            branch_taken_ratio=taken_ratio,
            calls=mc.calls,
            branches=mc.branches,
        )
    return FdoProfile(
        benchmark=execution.benchmark,
        methods=methods,
        training_workloads=(execution.workload,),
        machine=machine,
    )


def merge_profiles(profiles: Sequence[FdoProfile]) -> FdoProfile:
    """Combined profiling: average weights, pool branch statistics.

    Branch biases are combined by pooling raw taken/total counts, so a
    method that is strongly biased one way in one workload and the
    other way in another ends up un-hintable — exactly the effect that
    makes combined profiles conservative but robust.
    """
    if not profiles:
        raise StudyError("merge_profiles: need at least one profile")
    benchmark = profiles[0].benchmark
    if any(p.benchmark != benchmark for p in profiles):
        raise StudyError("merge_profiles: profiles target different benchmarks")
    machines = {p.machine for p in profiles if p.machine is not None}
    if len(machines) > 1:
        raise MachineMismatch(
            "merge_profiles: profiles were trained under different machine "
            "configurations"
        )

    all_methods: set[str] = set()
    for p in profiles:
        all_methods.update(p.methods.keys())

    merged: dict[str, MethodProfile] = {}
    for m in all_methods:
        weights = []
        taken = 0.0
        branches = 0
        calls = 0
        for p in profiles:
            mp = p.methods.get(m)
            if mp is None:
                weights.append(0.0)
                continue
            weights.append(mp.weight)
            calls += mp.calls
            if mp.branch_taken_ratio is not None:
                taken += mp.branch_taken_ratio * mp.branches
                branches += mp.branches
        merged[m] = MethodProfile(
            weight=sum(weights) / len(profiles),
            branch_taken_ratio=(taken / branches) if branches else None,
            calls=calls,
            branches=branches,
        )
    workloads = tuple(w for p in profiles for w in p.training_workloads)
    return FdoProfile(
        benchmark=benchmark,
        methods=merged,
        training_workloads=workloads,
        machine=machines.pop() if machines else None,
    )
