"""FDO evaluation methodologies (Sections II and VII of the paper).

Two evaluation protocols are implemented side by side:

* :func:`single_workload_methodology` — the criticized literature
  standard: profile once on the SPEC *train* workload, recompile,
  measure once on *refrate*, report that single speedup;
* :func:`cross_validate` — the Berube-style protocol the Alberta
  Workloads enable: for every training workload, evaluate the
  FDO-optimized binary on every *other* workload; report the full
  speedup distribution.  Optionally a *combined profile* merges all
  training runs first.

Speedup is baseline simulated seconds / FDO simulated seconds, both
under the same machine configuration.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..core.suite import alberta_workloads, get_benchmark
from ..core.workload import Workload, WorkloadSet
from ..machine.cost import CostModel, MachineConfig
from ..machine.telemetry import Probe
from .optimizer import FdoCostModel
from .profile_data import FdoProfile, collect_profile, merge_profiles

__all__ = [
    "FdoResult",
    "CrossValidationResult",
    "train_profile",
    "evaluate_pair",
    "single_workload_methodology",
    "cross_validate",
]


@dataclass(frozen=True)
class FdoResult:
    """One (train workload, eval workload) FDO measurement."""

    benchmark: str
    train_workload: str
    eval_workload: str
    baseline_seconds: float
    fdo_seconds: float

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / self.fdo_seconds


@dataclass
class CrossValidationResult:
    """The speedup distribution from cross-validated FDO evaluation."""

    benchmark: str
    results: list[FdoResult] = field(default_factory=list)

    @property
    def speedups(self) -> list[float]:
        return [r.speedup for r in self.results]

    def summary(self) -> dict[str, float]:
        sp = self.speedups
        return {
            "n": len(sp),
            "mean": statistics.fmean(sp),
            "min": min(sp),
            "max": max(sp),
            "stdev": statistics.stdev(sp) if len(sp) > 1 else 0.0,
            "n_regressions": sum(1 for s in sp if s < 1.0),
        }


def _run(benchmark, workload: Workload, cost_model: CostModel) -> tuple[float, Probe]:
    probe = Probe()
    output = benchmark.run(workload, probe)
    if not benchmark.verify(workload, output):
        raise ValueError(f"FDO evaluation: {workload.name} failed verification")
    report = cost_model.evaluate(probe)
    return report.seconds, probe


def train_profile(
    benchmark_id: str,
    workload: Workload,
    machine: MachineConfig | None = None,
) -> FdoProfile:
    """Instrumented training run -> FDO profile."""
    from ..machine.profiler import ExecutionProfile

    benchmark = get_benchmark(benchmark_id)
    probe = Probe()
    output = benchmark.run(workload, probe)
    if not benchmark.verify(workload, output):
        raise ValueError(f"training run failed verification on {workload.name}")
    report = CostModel(machine).evaluate(probe)
    execution = ExecutionProfile(
        benchmark=benchmark_id,
        workload=workload.name,
        report=report,
        output=output,
        verified=True,
    )
    return collect_profile(execution, probe.methods())


def evaluate_pair(
    benchmark_id: str,
    train_workload: Workload,
    eval_workload: Workload,
    *,
    machine: MachineConfig | None = None,
    profile: FdoProfile | None = None,
) -> FdoResult:
    """Train on one workload (or use ``profile``), evaluate on another."""
    benchmark = get_benchmark(benchmark_id)
    if profile is None:
        profile = train_profile(benchmark_id, train_workload, machine)
    baseline_seconds, _ = _run(benchmark, eval_workload, CostModel(machine))
    fdo_seconds, _ = _run(benchmark, eval_workload, FdoCostModel(profile, machine))
    return FdoResult(
        benchmark=benchmark_id,
        train_workload=",".join(profile.training_workloads),
        eval_workload=eval_workload.name,
        baseline_seconds=baseline_seconds,
        fdo_seconds=fdo_seconds,
    )


def single_workload_methodology(
    benchmark_id: str,
    workloads: WorkloadSet | None = None,
    *,
    machine: MachineConfig | None = None,
) -> FdoResult:
    """The criticized protocol: train on .train, evaluate on .refrate."""
    if workloads is None:
        workloads = alberta_workloads(benchmark_id)
    train = next(w for w in workloads if w.name.endswith(".train"))
    ref = next(w for w in workloads if w.name.endswith(".refrate"))
    return evaluate_pair(benchmark_id, train, ref, machine=machine)


def cross_validate(
    benchmark_id: str,
    workloads: WorkloadSet | None = None,
    *,
    machine: MachineConfig | None = None,
    combined: bool = False,
    max_workloads: int | None = None,
) -> CrossValidationResult:
    """Leave-one-out FDO evaluation over a workload set.

    With ``combined=True`` a single merged profile from all training
    workloads is evaluated on every workload instead (Berube's
    combined-profiling methodology).
    """
    if workloads is None:
        workloads = alberta_workloads(benchmark_id)
    wl = list(workloads)
    if max_workloads is not None:
        wl = wl[:max_workloads]
    if len(wl) < 2:
        raise ValueError("cross_validate: need at least two workloads")

    result = CrossValidationResult(benchmark=benchmark_id)
    if combined:
        profiles = [train_profile(benchmark_id, w, machine) for w in wl]
        profile = merge_profiles(profiles)
        for target in wl:
            result.results.append(
                evaluate_pair(
                    benchmark_id, target, target, machine=machine, profile=profile
                )
            )
        return result

    for train in wl:
        profile = train_profile(benchmark_id, train, machine)
        for target in wl:
            if target.name == train.name:
                continue
            result.results.append(
                evaluate_pair(
                    benchmark_id, train, target, machine=machine, profile=profile
                )
            )
    return result
