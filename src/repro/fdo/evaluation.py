"""FDO evaluation methodologies (Sections II and VII of the paper).

Two evaluation protocols are implemented side by side:

* :func:`single_workload_methodology` — the criticized literature
  standard: profile once on the SPEC *train* workload, recompile,
  measure once on *refrate*, report that single speedup;
* :func:`cross_validate` — the Berube-style protocol the Alberta
  Workloads enable: for every training workload, evaluate the
  FDO-optimized binary on every *other* workload; report the full
  speedup distribution.  Optionally a *combined profile* merges all
  training runs first.

Speedup is baseline simulated seconds / FDO simulated seconds, both
under the same machine configuration — enforced:
:func:`evaluate_pair` raises
:class:`~repro.core.errors.MachineMismatch` when the training profile
was collected under a different :class:`MachineConfig` than the
evaluation replays.

Everything here runs through the staged
:class:`~repro.core.run.Session` pipeline: each workload's benchmark
executes **once** (the capture stage) and every baseline/FDO
measurement is a replay of that capture.  The historical
cross-validation cost of ``W + 2·W·(W-1)`` executions collapses to
``W`` executions plus cheap replays; pass a shared ``session`` to
reuse captures (and any attached artifact store) across calls.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..core.errors import MachineMismatch, RegistrationError, StudyError
from ..core.run import ReplayRequest, Session
from ..core.registry import REGISTRY, alberta_workloads
from ..core.workload import Workload, WorkloadSet
from ..machine.cost import MachineConfig
from .optimizer import FdoBuild
from .profile_data import FdoProfile, collect_profile, merge_profiles

__all__ = [
    "FdoResult",
    "CrossValidationResult",
    "train_profile",
    "evaluate_pair",
    "single_workload_methodology",
    "cross_validate",
]


@dataclass(frozen=True)
class FdoResult:
    """One (train workload, eval workload) FDO measurement."""

    benchmark: str
    train_workload: str
    eval_workload: str
    baseline_seconds: float
    fdo_seconds: float

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / self.fdo_seconds


@dataclass
class CrossValidationResult:
    """The speedup distribution from cross-validated FDO evaluation."""

    benchmark: str
    results: list[FdoResult] = field(default_factory=list)

    @property
    def speedups(self) -> list[float]:
        return [r.speedup for r in self.results]

    def summary(self) -> dict[str, float]:
        sp = self.speedups
        return {
            "n": len(sp),
            "mean": statistics.fmean(sp),
            "min": min(sp),
            "max": max(sp),
            "stdev": statistics.stdev(sp) if len(sp) > 1 else 0.0,
            "n_regressions": sum(1 for s in sp if s < 1.0),
        }


def _resolve_build(build: "str | object", profile: FdoProfile) -> object:
    """A replay build from a registered ``fdo_build`` name or live object.

    A string goes through the registry — plugin-registered builds
    (:func:`~repro.core.registry.register_fdo_build`) resolve exactly
    like the built-in ``"fdo"``; an unknown name raises
    :class:`~repro.core.errors.UnknownScenarioError` with near-miss
    suggestions.  Anything else is assumed to already satisfy the build
    protocol (``name``, ``digest()``, ``cost_model(machine)``) and is
    returned untouched.
    """
    if not isinstance(build, str):
        return build
    descriptor = REGISTRY.get("fdo_build", build)
    if descriptor.factory is None:
        raise RegistrationError(
            f"fdo_build {build!r} has no factory (descriptor was "
            "deserialized or registered without one)"
        )
    return descriptor.factory(profile)


def _effective_machine(
    machine: MachineConfig | None, session: Session
) -> MachineConfig | None:
    """The config replays run under: explicit arg, else the session's."""
    return machine if machine is not None else session.engine.machine


def train_profile(
    benchmark_id: str,
    workload: Workload,
    machine: MachineConfig | None = None,
    *,
    session: Session | None = None,
) -> FdoProfile:
    """Instrumented training run -> FDO profile.

    One capture (reused if the session already holds it) plus one
    baseline replay for the coverage weights.  The profile is stamped
    with the (normalized) machine config it was trained under.
    """
    own = session is None
    if own:
        session = Session(machine=machine)
    try:
        m = _effective_machine(machine, session)
        capture = session.capture(benchmark_id, workload)
        execution = session.replay(capture, ReplayRequest(workload=workload, machine=m))
        return collect_profile(
            execution, capture.methods, machine=m or MachineConfig()
        )
    finally:
        if own:
            session.close()


def evaluate_pair(
    benchmark_id: str,
    train_workload: Workload,
    eval_workload: Workload,
    *,
    machine: MachineConfig | None = None,
    profile: FdoProfile | None = None,
    build: "str | object" = "fdo",
    session: Session | None = None,
) -> FdoResult:
    """Train on one workload (or use ``profile``), evaluate on another.

    Both measurements replay the same captured execution of
    ``eval_workload`` — the baseline through the plain cost model, the
    FDO run through the ``build``: a registered ``fdo_build`` name (the
    default ``"fdo"`` resolves to
    :class:`~repro.fdo.optimizer.FdoBuild`; plugins register their own
    via :func:`~repro.core.registry.register_fdo_build`) or a live
    build object.  The build's ``digest()`` joins the replay cache key
    and the session ledger's ``builds`` map, so differently-built
    profiles never collide.  A ``profile`` trained under a different
    machine configuration than the evaluation raises
    :class:`~repro.core.errors.MachineMismatch` (``None``-vs-default
    configs are normalized, not rejected).
    """
    own = session is None
    if own:
        session = Session(machine=machine)
    try:
        m = _effective_machine(machine, session)
        if profile is not None and profile.machine is not None:
            if profile.machine != (m or MachineConfig()):
                raise MachineMismatch(
                    f"evaluate_pair: profile for {profile.benchmark} was "
                    f"trained under a different machine configuration than "
                    f"the evaluation"
                )
        if profile is None:
            profile = train_profile(
                benchmark_id, train_workload, m, session=session
            )
        capture = session.capture(benchmark_id, eval_workload)
        baseline = session.replay(
            capture, ReplayRequest(workload=eval_workload, machine=m)
        )
        fdo = session.replay(
            capture,
            ReplayRequest(
                workload=eval_workload,
                build=_resolve_build(build, profile),
                machine=m,
            ),
        )
        return FdoResult(
            benchmark=benchmark_id,
            train_workload=",".join(profile.training_workloads),
            eval_workload=eval_workload.name,
            baseline_seconds=baseline.report.seconds,
            fdo_seconds=fdo.report.seconds,
        )
    finally:
        if own:
            session.close()


def single_workload_methodology(
    benchmark_id: str,
    workloads: WorkloadSet | None = None,
    *,
    machine: MachineConfig | None = None,
    session: Session | None = None,
) -> FdoResult:
    """The criticized protocol: train on .train, evaluate on .refrate."""
    if workloads is None:
        workloads = alberta_workloads(benchmark_id)
    train = next(w for w in workloads if w.name.endswith(".train"))
    ref = next(w for w in workloads if w.name.endswith(".refrate"))
    return evaluate_pair(benchmark_id, train, ref, machine=machine, session=session)


def cross_validate(
    benchmark_id: str,
    workloads: WorkloadSet | None = None,
    *,
    machine: MachineConfig | None = None,
    combined: bool = False,
    max_workloads: int | None = None,
    session: Session | None = None,
) -> CrossValidationResult:
    """Leave-one-out FDO evaluation over a workload set.

    With ``combined=True`` a single merged profile from all training
    workloads is evaluated on every workload instead (Berube's
    combined-profiling methodology).

    Staged execution: the ``W`` workloads are captured once (one
    engine pass, parallel under a multi-worker session), training
    profiles and baselines come from one replay per workload, and
    every FDO measurement replays the target's capture under the
    train-profile build — ``W`` executions total where the old private
    loop ran the benchmark ``W + 2·W·(W-1)`` times.
    """
    own = session is None
    if own:
        session = Session(machine=machine)
    try:
        if workloads is None:
            workloads = alberta_workloads(benchmark_id)
        wl = list(workloads)
        if max_workloads is not None:
            wl = wl[:max_workloads]
        if len(wl) < 2:
            raise StudyError("cross_validate: need at least two workloads")

        m = _effective_machine(machine, session)
        captures = session.capture_set(benchmark_id, wl)
        baselines = [
            session.replay(cap, ReplayRequest(workload=w, machine=m))
            for cap, w in zip(captures, wl)
        ]
        profiles = [
            collect_profile(ex, cap.methods, machine=m or MachineConfig())
            for ex, cap in zip(baselines, captures)
        ]

        result = CrossValidationResult(benchmark=benchmark_id)
        if combined:
            build = FdoBuild(merge_profiles(profiles))
            for cap, base, target in zip(captures, baselines, wl):
                fdo = session.replay(
                    cap, ReplayRequest(workload=target, build=build, machine=m)
                )
                result.results.append(
                    FdoResult(
                        benchmark=benchmark_id,
                        train_workload=",".join(build.profile.training_workloads),
                        eval_workload=target.name,
                        baseline_seconds=base.report.seconds,
                        fdo_seconds=fdo.report.seconds,
                    )
                )
            return result

        for ti, train in enumerate(wl):
            build = FdoBuild(profiles[ti])
            for ei, target in enumerate(wl):
                if ei == ti:
                    continue
                fdo = session.replay(
                    captures[ei],
                    ReplayRequest(workload=target, build=build, machine=m),
                )
                result.results.append(
                    FdoResult(
                        benchmark=benchmark_id,
                        train_workload=",".join(profiles[ti].training_workloads),
                        eval_workload=target.name,
                        baseline_seconds=baselines[ei].report.seconds,
                        fdo_seconds=fdo.report.seconds,
                    )
                )
        return result
    finally:
        if own:
            session.close()
