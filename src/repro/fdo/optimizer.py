"""Profile-guided optimization at the machine-model level.

Recompiling a SPEC binary with FDO changes three things our machine
model can express directly:

* **code layout / inlining** — hot methods (by training weight) get
  tighter code: reduced call overhead and a smaller effective
  instruction footprint (fewer L1I misses);
* **static branch hints** — branch sites in methods whose training
  bias was confident are predicted statically; when the *evaluation*
  workload shares that bias the hint beats the cold-start dynamic
  predictor, and when it does not, the hint actively hurts — the
  precise mechanism behind the paper's warning about single-workload
  training;
* **cold-code splitting** — methods never seen in training are moved
  out of line (slightly larger effective footprint on first touch).

:class:`FdoCostModel` evaluates a probe exactly like the base
:class:`~repro.machine.cost.CostModel` after rewriting the telemetry
according to the profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register_fdo_build
from ..machine.cost import CostModel, MachineConfig, MachineReport
from ..machine.telemetry import EV_BRANCH, Probe
from .profile_data import FdoProfile

__all__ = ["FdoBuild", "FdoCostModel", "optimize_probe"]

#: Inlining/layout shrink factor for hot code.
_HOT_CODE_SHRINK = 0.55
#: Call-overhead reduction for inlined hot methods.
_HOT_CALL_SHRINK = 0.4
#: Footprint growth for cold-split methods.
_COLD_CODE_GROWTH = 1.3


def optimize_probe(probe: Probe, profile: FdoProfile) -> None:
    """Apply layout decisions to a probe's recorded telemetry in place.

    Mutates per-method ``code_bytes`` (layout) and ``calls``
    (inlining) according to the training profile.  Branch hinting is
    handled during replay by :class:`FdoCostModel`.
    """
    hot = set(profile.hot_methods())
    for mc in probe.methods():
        if mc.name in hot:
            mc.code_bytes = max(64, int(mc.code_bytes * _HOT_CODE_SHRINK))
            mc.calls = max(1, int(mc.calls * _HOT_CALL_SHRINK))
        elif mc.name not in profile.methods:
            mc.code_bytes = int(mc.code_bytes * _COLD_CODE_GROWTH)


class FdoCostModel(CostModel):
    """Cost model for an FDO-recompiled binary.

    Branches in methods with a static hint bypass the dynamic
    predictor: they mispredict exactly when the actual outcome differs
    from the hinted direction.  Everything else falls through to the
    base model.
    """

    def __init__(self, profile: FdoProfile, config: MachineConfig | None = None):
        super().__init__(config)
        self.profile = profile

    def evaluate(self, probe: Probe) -> MachineReport:
        optimize_probe(probe, self.profile)

        # Pre-compute hints per method index.
        hints: dict[int, bool] = {}
        for mc in probe.methods():
            hint = self.profile.branch_hint(mc.name)
            if hint is not None:
                hints[mc.index] = hint

        if hints:
            # Rewrite hinted branch events so that the dynamic predictor
            # in the base replay sees only unhinted branches; hinted
            # mispredicts are accounted by flipping the event into a
            # pre-resolved form: we emulate the static hint by replacing
            # the outcome stream with "correct iff outcome == hint".
            # Concretely: a hinted branch that matches its hint becomes a
            # perfectly-predicted event (all outcomes identical teach the
            # predictor nothing harmful), and a mismatch becomes a
            # mispredict.  We implement this by resolving hinted events
            # columnar here and removing them from the stream.
            static_mispredicts: dict[int, int] = {}
            static_branches: dict[int, int] = {}
            midx, kind, a, b = probe.events.columns()
            n_slots = len(probe.methods())
            hint_val = np.zeros(n_slots, dtype=bool)
            is_hinted = np.zeros(n_slots, dtype=bool)
            for idx, hint in hints.items():
                hint_val[idx] = hint
                is_hinted[idx] = True
            hinted_sel = (kind == EV_BRANCH) & is_hinted[midx]
            h_midx = midx[hinted_sel]
            mismatch = (b[hinted_sel] != 0) != hint_val[h_midx]
            sb = np.bincount(h_midx, minlength=n_slots)
            sm = np.bincount(h_midx, weights=mismatch, minlength=n_slots).astype(np.int64)
            for idx in np.flatnonzero(sb).tolist():
                static_branches[idx] = int(sb[idx])
                if sm[idx]:
                    static_mispredicts[idx] = int(sm[idx])
            keep = ~hinted_sel
            probe.replace_events_columns(midx[keep], kind[keep], a[keep], b[keep])

            report = super().evaluate(probe)

            # Fold the statically-predicted branches back into the
            # per-method accounting.  A hinted branch's likely path is
            # laid out fall-through, so a wrong static guess costs only
            # half the normal wrong-path work (fetch re-steers within
            # the same line); a right guess costs nothing.
            cfg = self.config
            for mc in probe.methods():
                sb = static_branches.get(mc.index, 0)
                if not sb:
                    continue
                sm = static_mispredicts.get(mc.index, 0)
                # extrapolate sampled static events to the exact count of
                # branches this method executed
                cost = report.per_method[mc.name]
                extra_mispredicts = mc.branches * (sm / sb)
                cost.est_mispredicts += extra_mispredicts
                extra_bad_spec = extra_mispredicts * cfg.wrongpath_uops * 0.5 / cfg.width
                extra_frontend = extra_mispredicts * cfg.refill_cycles * 0.5
                cost.bad_spec_cycles += extra_bad_spec
                cost.frontend_cycles += extra_frontend

            return self._rebuild_report(probe, report)
        return super().evaluate(probe)

    def _rebuild_report(self, probe: Probe, report: MachineReport) -> MachineReport:
        """Recompute the aggregate views after per-method adjustments."""
        from ..core.coverage import CoverageProfile
        from ..core.topdown import TopDownVector

        per_method = report.per_method
        total_fe = sum(c.frontend_cycles for c in per_method.values())
        total_be = sum(c.backend_cycles for c in per_method.values())
        total_bad = sum(c.bad_spec_cycles for c in per_method.values())
        total_ret = sum(c.retiring_cycles for c in per_method.values())
        total = total_fe + total_be + total_bad + total_ret
        # the base replay's rate covers only unhinted branches; fold the
        # statically-predicted ones back in
        total_branches = sum(mc.branches for mc in probe.methods())
        if total_branches:
            report.branch_misprediction_rate = (
                sum(c.est_mispredicts for c in per_method.values()) / total_branches
            )
        report.topdown = TopDownVector.from_cycles(total_fe, total_be, total_bad, total_ret)
        report.coverage = CoverageProfile.from_times(
            {n: c.total_cycles for n, c in per_method.items() if c.total_cycles > 0}
        )
        report.cycles = total
        report.seconds = total / (self.config.clock_ghz * 1e9)
        return report


@dataclass(frozen=True)
class FdoBuild:
    """An FDO-recompiled "binary" as a replay-stage build transformation.

    The engine's replay stage (:meth:`repro.core.engine.
    CharacterizationEngine.replay_run`) is build-agnostic: it accepts
    any object with a ``name``, a content ``digest()`` for the profile
    cache key, and a ``cost_model(machine)`` factory.  This is that
    object for FDO — wrapping the training profile so a build-sweep
    replays one captured telemetry stream under baseline and
    FDO-optimized models without re-executing the benchmark.
    """

    profile: FdoProfile
    name: str = "fdo"

    def digest(self) -> str:
        """Content digest of the build inputs, for replay cache keys.

        Folds in the registered ``fdo_build`` descriptor's cache token
        when (and only when) that descriptor's version has been bumped —
        ``None`` tokens hash to nothing, keeping baseline FDO keys
        byte-identical to the pre-registry era.
        """
        from ..core.cache import payload_digest
        from ..core.registry import REGISTRY

        ident: dict = {"build": self.name, "profile": self.profile}
        descriptor = REGISTRY.find("fdo_build", self.name)
        token = descriptor.cache_token() if descriptor is not None else None
        if token is not None:
            ident["descriptor"] = token
        return payload_digest(ident)

    def cost_model(self, machine: MachineConfig | None = None) -> FdoCostModel:
        """The cost model this build replays captures through."""
        return FdoCostModel(self.profile, machine)


register_fdo_build("fdo", FdoBuild)
