"""Program similarity via microarchitecture-independent characteristics.

Phansalkar et al. (cited in Section VI) measure SPEC program similarity
from microarchitecture-independent features.  This module does the
same for the sixteen substrates: per-benchmark feature vectors built
from telemetry that does not depend on the machine configuration
(operation mix, branch bias and density, memory footprint and access
density), a PCA projection (numpy), and a pairwise similarity matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import StudyError
from ..core.run import Session
from ..core.registry import alberta_workloads
from ..machine.capture import TelemetryCapture

__all__ = [
    "ProgramFeatures",
    "collect_features",
    "features_from_capture",
    "pca",
    "similarity_matrix",
    "most_similar_pairs",
]

FEATURE_NAMES = (
    "int_op_share",
    "fp_op_share",
    "fpdiv_op_share",
    "branch_density",
    "branch_taken_ratio",
    "load_share",
    "store_share",
    "footprint_log_bytes",
    "accesses_per_op",
    "methods_log",
    "call_density",
)


@dataclass(frozen=True)
class ProgramFeatures:
    """One benchmark's microarchitecture-independent vector."""

    benchmark: str
    workload: str
    vector: np.ndarray

    def as_dict(self) -> dict[str, float]:
        return dict(zip(FEATURE_NAMES, self.vector.tolist()))


def collect_features(
    benchmark_id: str, workload=None, *, session: Session | None = None
) -> ProgramFeatures:
    """Capture one workload and derive machine-independent features.

    Runs as a pure capture-stage consumer: the benchmark executes
    through :meth:`~repro.core.run.Session.capture` (so a warm
    artifact store or a shared session means no re-execution at all)
    and the features are computed from the captured telemetry — the
    replay stage never runs because nothing here needs a cost model.
    """
    if workload is None:
        workloads = alberta_workloads(benchmark_id)
        workload = next(w for w in workloads if w.name.endswith(".refrate"))
    own = session is None
    if own:
        session = Session()
    try:
        capture = session.capture(benchmark_id, workload)
    finally:
        if own:
            session.close()
    return features_from_capture(benchmark_id, capture)


def features_from_capture(
    benchmark_id: str, capture: TelemetryCapture
) -> ProgramFeatures:
    """Derive the feature vector from already-captured telemetry.

    Only telemetry *counts* are used — nothing from the cost model —
    so the vector is identical under any :class:`MachineConfig`.
    """
    methods = capture.methods
    int_ops = sum(m.int_ops for m in methods)
    fp_ops = sum(m.fp_ops for m in methods)
    fpdiv = sum(m.fpdiv_ops for m in methods)
    total_ops = max(1, int_ops + fp_ops + fpdiv)
    branches = sum(m.branches for m in methods)
    taken = sum(m.branches_taken for m in methods)
    loads = sum(m.loads for m in methods)
    stores = sum(m.stores for m in methods)
    accesses = max(1, loads + stores)
    calls = sum(m.calls for m in methods)

    # footprint: distinct 64-byte lines in the sampled address stream
    _, ev_kind, ev_a, _ = capture.columns
    n_lines = len(np.unique(ev_a[ev_kind == 1] >> 6))
    footprint = max(64, n_lines * 64)

    vector = np.array(
        [
            int_ops / total_ops,
            fp_ops / total_ops,
            fpdiv / total_ops,
            branches / max(1, total_ops + branches),
            taken / max(1, branches),
            loads / accesses,
            stores / accesses,
            float(np.log10(footprint)),
            accesses / total_ops,
            float(np.log10(max(2, len(methods)))),
            calls / max(1, total_ops) * 1000.0,
        ]
    )
    return ProgramFeatures(
        benchmark=benchmark_id, workload=capture.workload, vector=vector
    )


def pca(matrix: np.ndarray, n_components: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """Principal components via SVD on the z-normalized matrix.

    Returns (projected points, explained-variance ratios).
    """
    if matrix.ndim != 2 or matrix.shape[0] < 2:
        raise StudyError("pca: need a 2-D matrix with at least two rows")
    std = matrix.std(axis=0)
    std[std == 0] = 1.0
    z = (matrix - matrix.mean(axis=0)) / std
    u, s, _vt = np.linalg.svd(z, full_matrices=False)
    k = min(n_components, len(s))
    projected = u[:, :k] * s[:k]
    variance = s**2
    explained = variance[:k] / variance.sum()
    return projected, explained


def similarity_matrix(features: list[ProgramFeatures]) -> np.ndarray:
    """Pairwise similarity in [0, 1] from z-space Euclidean distance."""
    if len(features) < 2:
        raise StudyError("need at least two programs")
    matrix = np.stack([f.vector for f in features])
    std = matrix.std(axis=0)
    std[std == 0] = 1.0
    z = (matrix - matrix.mean(axis=0)) / std
    n = len(features)
    dists = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            dists[i, j] = float(np.linalg.norm(z[i] - z[j]))
    peak = dists.max() or 1.0
    return 1.0 - dists / peak


def most_similar_pairs(
    features: list[ProgramFeatures],
    top: int = 5,
) -> list[tuple[str, str, float]]:
    """The most similar distinct program pairs, best first."""
    sim = similarity_matrix(features)
    pairs = []
    for i in range(len(features)):
        for j in range(i + 1, len(features)):
            pairs.append(
                (features[i].benchmark, features[j].benchmark, float(sim[i, j]))
            )
    pairs.sort(key=lambda p: -p[2])
    return pairs[:top]
