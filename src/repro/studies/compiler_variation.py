"""Compiler-variation study (Section V of the paper).

    "The Alberta Workloads are distributed with ... a study of the
    variation in branch prediction, cache/TLB performance, and
    execution time when different compilers, with different levels of
    optimization, are used."

Our substrate's "compilers" are build configurations of the machine
model: the **baseline** build, and an **FDO** build recompiled with a
profile from the SPEC train workload (the realistic deployment).  For
``502.gcc_r`` the benchmark itself also exposes a true optimization
level (O0 vs O2 workload variants).  This module measures, per
workload and per build: branch-misprediction rate, L1D/L2 miss rates,
DTLB miss rate, and simulated execution time — the same counters the
paper's distributed study covers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.suite import alberta_workloads, get_benchmark
from ..core.workload import Workload, WorkloadSet
from ..fdo.evaluation import train_profile
from ..fdo.optimizer import FdoCostModel
from ..machine.cost import CostModel, MachineConfig
from ..machine.telemetry import Probe

__all__ = ["BuildObservation", "compiler_variation", "variation_table"]


@dataclass(frozen=True)
class BuildObservation:
    """One (workload, build) measurement of the paper's counters."""

    workload: str
    build: str
    branch_misprediction_rate: float
    l1d_miss_rate: float
    l2_miss_rate: float
    dtlb_miss_rate: float
    seconds: float


def _observe(benchmark, workload: Workload, cost_model: CostModel, build: str) -> BuildObservation:
    probe = Probe()
    output = benchmark.run(workload, probe)
    if not benchmark.verify(workload, output):
        raise ValueError(f"{workload.name} failed verification under build {build!r}")
    report = cost_model.evaluate(probe)
    stats = report.cache_stats
    l1d = stats.l1d_misses / stats.l1d_accesses if stats.l1d_accesses else 0.0
    l2 = stats.l2_misses / stats.l2_accesses if stats.l2_accesses else 0.0
    dtlb = stats.dtlb_misses / max(1, stats.l1d_accesses)
    return BuildObservation(
        workload=workload.name,
        build=build,
        branch_misprediction_rate=report.branch_misprediction_rate,
        l1d_miss_rate=l1d,
        l2_miss_rate=l2,
        dtlb_miss_rate=dtlb,
        seconds=report.seconds,
    )


def compiler_variation(
    benchmark_id: str,
    *,
    workloads: WorkloadSet | None = None,
    machine: MachineConfig | None = None,
    max_workloads: int | None = 6,
) -> list[BuildObservation]:
    """Measure every workload under the baseline and FDO builds."""
    benchmark = get_benchmark(benchmark_id)
    if workloads is None:
        workloads = alberta_workloads(benchmark_id)
    wl = list(workloads)
    if max_workloads is not None:
        wl = wl[:max_workloads]

    train = next((w for w in wl if w.name.endswith(".train")), wl[0])
    profile = train_profile(benchmark_id, train, machine)

    observations: list[BuildObservation] = []
    for workload in wl:
        observations.append(_observe(benchmark, workload, CostModel(machine), "baseline"))
        observations.append(
            _observe(benchmark, workload, FdoCostModel(profile, machine), "fdo-train")
        )
    return observations


def variation_table(observations: list[BuildObservation]) -> str:
    """Fixed-width rendering of the study, grouped by workload."""
    header = (
        f"{'workload':<34} {'build':<10} {'br-miss':>8} {'L1D-miss':>9} "
        f"{'L2-miss':>8} {'DTLB':>7} {'time(s)':>10}"
    )
    lines = [header, "-" * len(header)]
    for obs in observations:
        lines.append(
            f"{obs.workload:<34} {obs.build:<10} "
            f"{obs.branch_misprediction_rate * 100:>7.2f}% "
            f"{obs.l1d_miss_rate * 100:>8.2f}% "
            f"{obs.l2_miss_rate * 100:>7.2f}% "
            f"{obs.dtlb_miss_rate * 100:>6.2f}% "
            f"{obs.seconds:>10.6f}"
        )
    return "\n".join(lines)
