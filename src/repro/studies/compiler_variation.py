"""Compiler-variation study (Section V of the paper).

    "The Alberta Workloads are distributed with ... a study of the
    variation in branch prediction, cache/TLB performance, and
    execution time when different compilers, with different levels of
    optimization, are used."

Our substrate's "compilers" are build configurations of the machine
model: the **baseline** build, and an **FDO** build recompiled with a
profile from the SPEC train workload (the realistic deployment).  For
``502.gcc_r`` the benchmark itself also exposes a true optimization
level (O0 vs O2 workload variants).  This module measures, per
workload and per build: branch-misprediction rate, L1D/L2 miss rates,
DTLB miss rate, and simulated execution time — the same counters the
paper's distributed study covers.

The study is a pure consumer of the staged pipeline: each workload is
captured once through :class:`~repro.core.run.Session` and both builds
are *replays* of that capture — the benchmark never executes twice for
the same workload, and a warm artifact store skips execution entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.run import ReplayRequest, Session
from ..core.workload import WorkloadSet
from ..fdo.evaluation import train_profile
from ..fdo.optimizer import FdoBuild
from ..machine.cost import MachineConfig, MachineReport

__all__ = ["BuildObservation", "compiler_variation", "variation_table"]


@dataclass(frozen=True)
class BuildObservation:
    """One (workload, build) measurement of the paper's counters."""

    workload: str
    build: str
    branch_misprediction_rate: float
    l1d_miss_rate: float
    l2_miss_rate: float
    dtlb_miss_rate: float
    seconds: float


def _observe(workload_name: str, build: str, report: MachineReport) -> BuildObservation:
    stats = report.cache_stats
    l1d = stats.l1d_misses / stats.l1d_accesses if stats.l1d_accesses else 0.0
    l2 = stats.l2_misses / stats.l2_accesses if stats.l2_accesses else 0.0
    dtlb = stats.dtlb_misses / max(1, stats.l1d_accesses)
    return BuildObservation(
        workload=workload_name,
        build=build,
        branch_misprediction_rate=report.branch_misprediction_rate,
        l1d_miss_rate=l1d,
        l2_miss_rate=l2,
        dtlb_miss_rate=dtlb,
        seconds=report.seconds,
    )


def compiler_variation(
    benchmark_id: str,
    *,
    workloads: WorkloadSet | None = None,
    machine: MachineConfig | None = None,
    max_workloads: int | None = 6,
    session: Session | None = None,
) -> list[BuildObservation]:
    """Measure every workload under the baseline and FDO builds.

    Stage economics: ``len(wl)`` captures (the train workload's capture
    is shared with :func:`~repro.fdo.evaluation.train_profile`), then
    two replays per workload — one per build.
    """
    own = session is None
    if own:
        session = Session(machine=machine)
    try:
        if workloads is None:
            from ..core.registry import alberta_workloads

            workloads = alberta_workloads(benchmark_id)
        wl = list(workloads)
        if max_workloads is not None:
            wl = wl[:max_workloads]

        m = machine if machine is not None else session.engine.machine
        train = next((w for w in wl if w.name.endswith(".train")), wl[0])
        profile = train_profile(benchmark_id, train, m, session=session)
        build = FdoBuild(profile, name="fdo-train")

        captures = session.capture_set(benchmark_id, wl)
        observations: list[BuildObservation] = []
        for workload, capture in zip(wl, captures):
            base = session.replay(capture, ReplayRequest(workload=workload, machine=m))
            fdo = session.replay(
                capture, ReplayRequest(workload=workload, build=build, machine=m)
            )
            observations.append(_observe(workload.name, "baseline", base.report))
            observations.append(_observe(workload.name, "fdo-train", fdo.report))
        return observations
    finally:
        if own:
            session.close()


def variation_table(observations: list[BuildObservation]) -> str:
    """Fixed-width rendering of the study, grouped by workload."""
    header = (
        f"{'workload':<34} {'build':<10} {'br-miss':>8} {'L1D-miss':>9} "
        f"{'L2-miss':>8} {'DTLB':>7} {'time(s)':>10}"
    )
    lines = [header, "-" * len(header)]
    for obs in observations:
        lines.append(
            f"{obs.workload:<34} {obs.build:<10} "
            f"{obs.branch_misprediction_rate * 100:>7.2f}% "
            f"{obs.l1d_miss_rate * 100:>8.2f}% "
            f"{obs.l2_miss_rate * 100:>7.2f}% "
            f"{obs.dtlb_miss_rate * 100:>6.2f}% "
            f"{obs.seconds:>10.6f}"
        )
    return "\n".join(lines)
