"""The hidden-learning problem (Section I of the paper), demonstrated.

    "...often the evaluation of computing systems suffers from an issue
    that we call *hidden learning* which consists on the researchers or
    developers tuning the system to select an appropriate set of static
    parameters and threshold values using a set of benchmarks ...  the
    constructed prototypes are evaluated using the same benchmarks ...
    with the very same workloads that were used for tuning."

This module makes the effect measurable.  The "system under
development" is the xz compressor's effort parameter ``max_chain``
(how many hash-chain candidates the match finder probes): higher
effort finds better matches (smaller output) but costs more simulated
time.  :func:`tune_parameter` picks the value that minimizes a
cost/quality objective on a *tuning* workload set;
:func:`hidden_learning_gap` then compares the tuned system's objective
on those same workloads (the methodology the paper criticizes) against
held-out workloads (honest evaluation).  A positive gap is the
hidden-learning optimism.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from statistics import fmean

from ..core.errors import StudyError
from ..benchmarks.xz import XzBenchmark, XzInput
from ..core.workload import Workload, WorkloadSet
from ..machine.cost import MachineConfig
from ..machine.profiler import Profiler

__all__ = ["TuningResult", "tune_parameter", "evaluate_objective", "hidden_learning_gap"]

#: Candidate values for the tuned parameter.
DEFAULT_CANDIDATES = (2, 4, 8, 16, 32, 64)


def _with_effort(workload: Workload, max_chain: int) -> Workload:
    payload = workload.payload
    if not isinstance(payload, XzInput):
        raise TypeError("hidden-learning study drives the xz substrate")
    # the stored blob was produced with different parameters; drop it so
    # the stage-1 decode matches the new configuration
    new_payload = replace(payload, max_chain=max_chain, stored=None)
    return Workload(
        name=workload.name,
        benchmark=workload.benchmark,
        payload=new_payload,
        kind=workload.kind,
        seed=workload.seed,
        params=dict(workload.params) | {"max_chain": max_chain},
    )


def evaluate_objective(
    workloads: list[Workload],
    max_chain: int,
    *,
    machine: MachineConfig | None = None,
    time_weight: float = 0.5,
) -> float:
    """The tuning objective: weighted simulated time + output size.

    Both terms are normalized per workload (seconds per input byte,
    compressed bytes per input byte) so workloads of different sizes
    contribute comparably.  Lower is better.
    """
    if not workloads:
        raise StudyError("need at least one workload")
    benchmark = XzBenchmark()
    profiler = Profiler(machine)
    scores = []
    for workload in workloads:
        configured = _with_effort(workload, max_chain)
        profile = profiler.run(benchmark, configured)
        n = len(configured.payload.content)
        time_term = profile.seconds / n * 1e6  # microseconds per byte
        size_term = profile.output["compressed_size"] / n
        scores.append(time_weight * time_term + (1 - time_weight) * size_term)
    return fmean(scores)


@dataclass
class TuningResult:
    """Outcome of parameter tuning on a workload set."""

    best_value: int
    objective_by_value: dict[int, float]

    @property
    def best_objective(self) -> float:
        return self.objective_by_value[self.best_value]


def tune_parameter(
    workloads: list[Workload],
    *,
    candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
    machine: MachineConfig | None = None,
    time_weight: float = 0.5,
) -> TuningResult:
    """Grid-search ``max_chain`` on the tuning workloads."""
    objective_by_value = {
        value: evaluate_objective(
            workloads, value, machine=machine, time_weight=time_weight
        )
        for value in candidates
    }
    best = min(objective_by_value, key=objective_by_value.get)
    return TuningResult(best_value=best, objective_by_value=objective_by_value)


@dataclass
class HiddenLearningReport:
    """Tuned-set vs held-out-set comparison."""

    tuning: TuningResult
    objective_on_tuning_set: float
    objective_on_holdout_set: float
    holdout_best_value: int
    holdout_best_objective: float

    @property
    def optimism_gap(self) -> float:
        """How much worse the tuned system is on held-out workloads
        than the reported (tuning-set) number suggests."""
        return self.objective_on_holdout_set - self.objective_on_tuning_set

    @property
    def regret(self) -> float:
        """How much better the holdout objective could have been with
        the parameter a holdout-aware tuning would have chosen."""
        return self.objective_on_holdout_set - self.holdout_best_objective


def hidden_learning_gap(
    workloads: WorkloadSet,
    *,
    n_tuning: int = 4,
    candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
    machine: MachineConfig | None = None,
    time_weight: float = 0.5,
) -> HiddenLearningReport:
    """Tune on the first ``n_tuning`` workloads, evaluate on the rest."""
    wl = list(workloads)
    if len(wl) <= n_tuning:
        raise StudyError("need more workloads than the tuning set consumes")
    tuning_set = wl[:n_tuning]
    holdout_set = wl[n_tuning:]

    tuning = tune_parameter(
        tuning_set, candidates=candidates, machine=machine, time_weight=time_weight
    )
    on_tuning = tuning.best_objective
    on_holdout = evaluate_objective(
        holdout_set, tuning.best_value, machine=machine, time_weight=time_weight
    )
    holdout_tuning = tune_parameter(
        holdout_set, candidates=candidates, machine=machine, time_weight=time_weight
    )
    return HiddenLearningReport(
        tuning=tuning,
        objective_on_tuning_set=on_tuning,
        objective_on_holdout_set=on_holdout,
        holdout_best_value=holdout_tuning.best_value,
        holdout_best_objective=holdout_tuning.best_objective,
    )
