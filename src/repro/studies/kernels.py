"""Kernel representativeness (a Section VII "would-be-nice").

The computer-architecture community condenses benchmarks into
*kernels* — small slices that are cheap to simulate — almost always
derived from a **single** workload (the SPEC reference input).  The
paper asks: do such kernels actually represent the range of behaviours
the benchmark exhibits across workloads?

This module answers the question with the machinery at hand.  A
:class:`Kernel` is the set of hottest methods covering a target
fraction of one reference execution (how MinneSPEC/SimPoint-style
condensation behaves at method granularity).  Its *prediction* of a
run's behaviour is the top-down mix restricted to the kernel methods.
:func:`kernel_representativeness` builds the kernel from one workload
and scores the prediction error on every other workload — large errors
on non-reference workloads are exactly the failure mode the paper
anticipates for workload-sensitive benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import StudyError
from ..core.characterize import BenchmarkCharacterization
from ..core.topdown import CATEGORIES, TopDownVector
from ..machine.profiler import ExecutionProfile

__all__ = ["Kernel", "extract_kernel", "kernel_prediction", "kernel_representativeness"]


@dataclass(frozen=True)
class Kernel:
    """A method-level benchmark condensation."""

    benchmark: str
    reference_workload: str
    methods: tuple[str, ...]
    coverage_on_reference: float

    def __post_init__(self) -> None:
        if not self.methods:
            raise StudyError("Kernel: needs at least one method")


def extract_kernel(
    profile: ExecutionProfile,
    target_coverage: float = 0.9,
) -> Kernel:
    """Pick the hottest methods of one run until ``target_coverage``.

    This mirrors single-reference-input kernel construction: the choice
    of methods is entirely determined by one execution.
    """
    if not 0.0 < target_coverage <= 1.0:
        raise StudyError("target_coverage must be in (0, 1]")
    ranked = sorted(
        profile.coverage.fractions.items(), key=lambda kv: (-kv[1], kv[0])
    )
    chosen: list[str] = []
    covered = 0.0
    for method, fraction in ranked:
        chosen.append(method)
        covered += fraction
        if covered >= target_coverage:
            break
    return Kernel(
        benchmark=profile.benchmark,
        reference_workload=profile.workload,
        methods=tuple(chosen),
        coverage_on_reference=covered,
    )


def kernel_prediction(kernel: Kernel, profile: ExecutionProfile) -> TopDownVector:
    """The top-down mix a kernel-only simulation would report.

    Restricts cycle accounting to the kernel methods.  When the
    workload spends time in methods outside the kernel, those cycles
    are invisible to the kernel simulation — the source of error.
    """
    totals = {cat: 0.0 for cat in CATEGORIES}
    for name in kernel.methods:
        cost = profile.report.per_method.get(name)
        if cost is None:
            continue
        totals["front_end"] += cost.frontend_cycles
        totals["back_end"] += cost.backend_cycles
        totals["bad_speculation"] += cost.bad_spec_cycles
        totals["retiring"] += cost.retiring_cycles
    if sum(totals.values()) <= 0:
        raise StudyError(
            f"kernel {kernel.methods!r} never executes on workload {profile.workload!r}"
        )
    return TopDownVector.from_cycles(
        totals["front_end"],
        totals["back_end"],
        totals["bad_speculation"],
        totals["retiring"],
    )


def _topdown_distance(a: TopDownVector, b: TopDownVector) -> float:
    """Euclidean distance between two top-down mixes."""
    return math.sqrt(
        sum((a.category(c) - b.category(c)) ** 2 for c in CATEGORIES)
    )


@dataclass
class RepresentativenessResult:
    """Per-workload kernel fidelity for one benchmark."""

    kernel: Kernel
    coverage_by_workload: dict[str, float]
    error_by_workload: dict[str, float]

    @property
    def worst_coverage(self) -> float:
        others = {
            w: c
            for w, c in self.coverage_by_workload.items()
            if w != self.kernel.reference_workload
        }
        return min(others.values()) if others else 1.0

    @property
    def worst_error(self) -> float:
        others = {
            w: e
            for w, e in self.error_by_workload.items()
            if w != self.kernel.reference_workload
        }
        return max(others.values()) if others else 0.0


def kernel_representativeness(
    char: BenchmarkCharacterization,
    *,
    target_coverage: float = 0.9,
    reference_suffix: str = ".refrate",
) -> RepresentativenessResult:
    """Build a kernel from the reference workload, score all others.

    ``char`` must carry profiles (``characterize(..., keep_profiles=True)``).
    Coverage below the target on a non-reference workload means the
    kernel misses behaviour that workload exercises; the top-down error
    quantifies how wrong a kernel-based simulation's conclusions
    would be.
    """
    if not char.profiles:
        raise StudyError("characterize with keep_profiles=True first")
    reference = next(
        (p for p in char.profiles if p.workload.endswith(reference_suffix)),
        char.profiles[0],
    )
    kernel = extract_kernel(reference, target_coverage)
    coverage: dict[str, float] = {}
    error: dict[str, float] = {}
    for profile in char.profiles:
        coverage[profile.workload] = sum(
            profile.coverage.fraction(m) for m in kernel.methods
        )
        predicted = kernel_prediction(kernel, profile)
        error[profile.workload] = _topdown_distance(predicted, profile.topdown)
    return RepresentativenessResult(
        kernel=kernel,
        coverage_by_workload=coverage,
        error_by_workload=error,
    )
