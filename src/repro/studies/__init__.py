"""Research studies from the paper's Sections I and VII ("would-be-nices")."""

from .compiler_variation import BuildObservation, compiler_variation, variation_table
from .hidden_learning import (
    HiddenLearningReport,
    TuningResult,
    evaluate_objective,
    hidden_learning_gap,
    tune_parameter,
)
from .kernels import (
    Kernel,
    extract_kernel,
    kernel_prediction,
    kernel_representativeness,
)
from .similarity import (
    ProgramFeatures,
    collect_features,
    features_from_capture,
    most_similar_pairs,
    pca,
    similarity_matrix,
)

__all__ = [
    "BuildObservation",
    "compiler_variation",
    "variation_table",
    "HiddenLearningReport",
    "TuningResult",
    "evaluate_objective",
    "hidden_learning_gap",
    "tune_parameter",
    "Kernel",
    "extract_kernel",
    "kernel_prediction",
    "kernel_representativeness",
    "ProgramFeatures",
    "collect_features",
    "features_from_capture",
    "most_similar_pairs",
    "pca",
    "similarity_matrix",
]
